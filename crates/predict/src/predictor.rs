//! The predictor: expert selection across features.
//!
//! For a new job, every feature value the job matches contributes up to four
//! experts. The expert with the lowest NMAE over its past predictions wins;
//! its feature value's histogram becomes the job's distribution estimate and
//! its point estimate is the JVuPredict-style point prediction (§4.1).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use threesigma_histogram::RuntimeDistribution;

use crate::expert::{EstimatorKind, ValueState, ESTIMATORS};
use crate::feature::{extract, AttributeSource, FeatureSet};

/// Predictor tuning knobs.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Streaming-histogram bin budget (paper: 80).
    pub max_bins: usize,
    /// Window for the median / recent-average experts.
    pub recent_window: usize,
    /// Rolling-expert smoothing factor (paper: 0.6).
    pub ewma_alpha: f64,
    /// Optional cap on visible samples per feature value (Fig. 11 study).
    pub sample_cap: Option<usize>,
    /// Minimum scored predictions before an expert's NMAE is trusted.
    pub min_expert_evals: u64,
    /// Optional cap on distinct `(feature, value)` states tracked. When a
    /// new value would exceed it, the least-recently-*observed* state is
    /// evicted (prediction reads do not refresh recency, keeping `predict`
    /// immutable and deterministic). `None` = unbounded (batch runs).
    pub max_tracked_values: Option<usize>,
    /// Optional TTL, in *observations* (the predictor's logical clock): a
    /// state untouched for more than this many observation-touches is
    /// evicted on the next observe. `None` = no expiry.
    pub value_ttl: Option<u64>,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            max_bins: 80,
            recent_window: 10,
            ewma_alpha: 0.6,
            sample_cap: None,
            min_expert_evals: 3,
            max_tracked_values: None,
            value_ttl: None,
        }
    }
}

/// A runtime prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Estimated runtime distribution (the winning feature value's history).
    pub distribution: RuntimeDistribution,
    /// The winning expert's point estimate (JVuPredict's output).
    pub point: f64,
    /// Name of the winning feature.
    pub feature: &'static str,
    /// The winning estimator.
    pub estimator: EstimatorKind,
    /// Number of history samples behind the distribution.
    pub history: u64,
}

/// 3σPredict: per-feature-value histories plus online expert selection.
#[derive(Debug)]
pub struct Predictor {
    config: PredictorConfig,
    features: FeatureSet,
    /// State per `(feature index, feature value)`.
    /// Ordered map: `stats`/`snapshot`/`restore` iterate it, and both
    /// expert scoring and snapshot bytes must not depend on hash order.
    state: BTreeMap<(usize, String), ValueState>,
    /// Logical observation clock: advances once per feature-value touch in
    /// [`observe`](Self::observe). Drives LRU/TTL eviction and is persisted
    /// in snapshots so eviction order survives restarts bit-for-bit.
    clock: u64,
    /// Last touch per tracked key (same keys as `state`).
    touch: BTreeMap<(usize, String), u64>,
    /// Recency index: `(touch, feature index, value)` ascending, so the
    /// least-recently-observed entry is always `first()`. Ties (legacy
    /// snapshots with no recorded touches) break on the key, keeping
    /// eviction deterministic.
    by_touch: BTreeSet<(u64, usize, String)>,
    /// Feature-value states evicted by the LRU cap or TTL (memory gauge).
    evictions: u64,
    /// Running totals maintained by [`observe`](Self::observe) so
    /// [`quick_stats`](Self::quick_stats) is O(1); [`stats`](Self::stats)
    /// recomputes the same sums exactly by scanning.
    observations: u64,
    bin_merges: u64,
    /// Truncated (killed/failed) runs recorded as censored lower bounds —
    /// counted for telemetry, never folded into the histories.
    censored: u64,
    /// Lowest scored-expert NMAE seen so far (historical minimum).
    best_nmae_seen: Option<f64>,
}

impl Predictor {
    /// Predictor with the standard feature set.
    pub fn new(config: PredictorConfig) -> Self {
        Self::with_features(config, FeatureSet::standard())
    }

    /// Predictor with an explicit feature set.
    pub fn with_features(config: PredictorConfig, features: FeatureSet) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        Self {
            config,
            features,
            state: BTreeMap::new(),
            clock: 0,
            touch: BTreeMap::new(),
            by_touch: BTreeSet::new(),
            evictions: 0,
            observations: 0,
            bin_merges: 0,
            censored: 0,
            best_nmae_seen: None,
        }
    }

    /// Number of distinct feature values tracked (memory gauge).
    pub fn tracked_values(&self) -> usize {
        self.state.len()
    }

    /// The canonical `&'static str` for a feature name this predictor
    /// tracks, or `None` for an unknown feature. Lets callers rehydrate
    /// borrowed feature names from serialized state (serve-mode restore).
    pub fn canonical_feature(&self, name: &str) -> Option<&'static str> {
        self.features
            .features
            .iter()
            .map(|f| f.name)
            .find(|n| *n == name)
    }

    /// Records a completed job's measured runtime against all its features.
    pub fn observe(&mut self, attrs: &impl AttributeSource, runtime: f64) {
        if !(runtime.is_finite() && runtime > 0.0) {
            return; // defensive: never poison history with bad samples
        }
        let cfg = &self.config;
        for (fi, feature) in self.features.features.iter().enumerate() {
            let Some(value) = extract(feature, attrs) else {
                continue;
            };
            self.clock += 1;
            let now = self.clock;
            if let Some(prev) = self.touch.insert((fi, value.clone()), now) {
                self.by_touch.remove(&(prev, fi, value.clone()));
            }
            self.by_touch.insert((now, fi, value.clone()));
            let state = self.state.entry((fi, value)).or_insert_with(|| {
                ValueState::new(
                    cfg.max_bins,
                    cfg.recent_window,
                    cfg.ewma_alpha,
                    cfg.sample_cap,
                )
            });
            let (count_before, merges_before) = (state.count(), state.bin_merges());
            state.observe(runtime);
            // Count deltas rather than inserts: a sample cap keeps
            // `count()` flat, and one insert can trigger several merges.
            self.observations += state.count().saturating_sub(count_before);
            self.bin_merges += state.bin_merges().saturating_sub(merges_before);
            if let Some(n) = state.best_nmae() {
                self.best_nmae_seen = Some(self.best_nmae_seen.map_or(n, |cur| cur.min(n)));
            }
        }
        self.enforce_bounds();
    }

    /// Applies the LRU cap and TTL (see [`PredictorConfig`]), evicting
    /// least-recently-observed states first. Running totals shrink with the
    /// evicted history so `quick_stats` keeps agreeing with a full scan.
    fn enforce_bounds(&mut self) {
        if let Some(ttl) = self.config.value_ttl {
            while let Some(oldest) = self.by_touch.first().cloned() {
                if self.clock.saturating_sub(oldest.0) <= ttl {
                    break;
                }
                self.evict(oldest);
            }
        }
        if let Some(cap) = self.config.max_tracked_values {
            while self.state.len() > cap {
                let Some(oldest) = self.by_touch.first().cloned() else {
                    break;
                };
                self.evict(oldest);
            }
        }
    }

    fn evict(&mut self, entry: (u64, usize, String)) {
        self.by_touch.remove(&entry);
        let key = (entry.1, entry.2);
        self.touch.remove(&key);
        if let Some(state) = self.state.remove(&key) {
            self.observations = self.observations.saturating_sub(state.count());
            self.bin_merges = self.bin_merges.saturating_sub(state.bin_merges());
            self.evictions += 1;
        }
    }

    /// Feature-value states evicted so far by the LRU cap or TTL.
    pub fn evicted_values(&self) -> u64 {
        self.evictions
    }

    /// The configured cap on tracked values, if any (bound gauge).
    pub fn tracked_values_limit(&self) -> Option<usize> {
        self.config.max_tracked_values
    }

    /// Records a *censored* observation: a run that was killed after
    /// `elapsed` seconds, so the true runtime is only known to be ≥
    /// `elapsed`.
    ///
    /// Censored samples must never enter the per-feature histograms or the
    /// expert NMAE scores — folding a truncated runtime in as if it were a
    /// completion would bias every history toward shorter runtimes (the
    /// jobs most likely to be killed are exactly the long ones). The full
    /// Kaplan–Meier-style reweighting the stochastic-scheduling literature
    /// uses needs the whole history per value; until that lands, the
    /// lower bound is recorded for telemetry only so runs can prove no
    /// truncated runtime leaked into the histories.
    pub fn observe_censored(&mut self, _attrs: &impl AttributeSource, elapsed: f64) {
        if !(elapsed.is_finite() && elapsed >= 0.0) {
            return; // same defensive posture as `observe`
        }
        self.censored += 1;
    }

    /// Censored (killed/failed) runs recorded so far. These are *not*
    /// included in [`quick_stats`](Self::quick_stats)' `observations`.
    pub fn censored_observations(&self) -> u64 {
        self.censored
    }

    /// Predicts the runtime distribution for a job with the given
    /// attributes. `None` when no matching feature value has any history.
    pub fn predict(&self, attrs: &impl AttributeSource) -> Option<Prediction> {
        // Best scored expert: lowest trusted NMAE; tie-break on more history.
        let mut best_scored: Option<(f64, u64, &ValueState, usize, EstimatorKind)> = None;
        // Fallback: most history, preferring the median estimator.
        let mut best_fallback: Option<(u64, &ValueState, usize, EstimatorKind)> = None;

        for (fi, feature) in self.features.features.iter().enumerate() {
            let Some(value) = extract(feature, attrs) else {
                continue;
            };
            let Some(state) = self.state.get(&(fi, value)) else {
                continue;
            };
            if state.count() == 0 {
                continue;
            }
            for kind in ESTIMATORS {
                if state.estimate(kind).is_none() {
                    continue;
                }
                let score = state.score(kind);
                match score.nmae() {
                    Some(nmae) if score.evals >= self.config.min_expert_evals => {
                        let better = match &best_scored {
                            None => true,
                            Some((b_nmae, b_hist, ..)) => {
                                nmae < *b_nmae - 1e-12
                                    || ((nmae - *b_nmae).abs() <= 1e-12 && state.count() > *b_hist)
                            }
                        };
                        if better {
                            best_scored = Some((nmae, state.count(), state, fi, kind));
                        }
                    }
                    _ => {
                        let pref = kind == EstimatorKind::RecentMedian;
                        let better = match &best_fallback {
                            None => true,
                            Some((b_hist, _, _, b_kind)) => {
                                state.count() > *b_hist
                                    || (state.count() == *b_hist
                                        && pref
                                        && *b_kind != EstimatorKind::RecentMedian)
                            }
                        };
                        if better {
                            best_fallback = Some((state.count(), state, fi, kind));
                        }
                    }
                }
            }
        }

        let (state, fi, kind) = match (best_scored, best_fallback) {
            (Some((_, _, s, fi, k)), _) => (s, fi, k),
            (None, Some((_, s, fi, k))) => (s, fi, k),
            (None, None) => return None,
        };
        let distribution = state.distribution()?;
        let point = state.estimate(kind)?;
        Some(Prediction {
            distribution,
            point,
            feature: self.features.features[fi].name,
            estimator: kind,
            history: state.count(),
        })
    }

    /// JVuPredict: just the winning expert's point estimate.
    pub fn predict_point(&self, attrs: &impl AttributeSource) -> Option<f64> {
        self.predict(attrs).map(|p| p.point)
    }

    /// Aggregate telemetry over the predictor's state: per-feature history
    /// sizes, sketch compression (bin merges), and the best expert NMAE.
    ///
    /// Every aggregate is order-independent (sums and minima), so the
    /// result is deterministic despite the hash-map backing store.
    pub fn stats(&self) -> PredictorStats {
        let mut per_feature: Vec<FeatureStats> = self
            .features
            .features
            .iter()
            .map(|f| FeatureStats {
                feature: f.name,
                values: 0,
                observations: 0,
                bin_merges: 0,
                best_nmae: None,
            })
            .collect();
        for ((fi, _), state) in &self.state {
            let fs = &mut per_feature[*fi];
            fs.values += 1;
            fs.observations += state.count();
            fs.bin_merges += state.bin_merges();
            if let Some(n) = state.best_nmae() {
                fs.best_nmae = Some(fs.best_nmae.map_or(n, |cur| cur.min(n)));
            }
        }
        PredictorStats {
            tracked_values: self.state.len(),
            observations: per_feature.iter().map(|f| f.observations).sum(),
            bin_merges: per_feature.iter().map(|f| f.bin_merges).sum(),
            per_feature,
        }
    }

    /// O(1) aggregate telemetry from the running totals maintained by
    /// [`observe`](Self::observe) — the per-scheduling-cycle metrics flush
    /// uses this instead of [`stats`](Self::stats), whose full scan over
    /// every tracked feature value is too slow for a hot path.
    ///
    /// `observations` and `bin_merges` agree exactly with [`stats`];
    /// `best_nmae` is the *historical* minimum (lowest scored-expert NMAE
    /// seen so far), whereas [`stats`] reports the current minimum.
    pub fn quick_stats(&self) -> QuickStats {
        QuickStats {
            tracked_values: self.state.len(),
            observations: self.observations,
            bin_merges: self.bin_merges,
            censored: self.censored,
            evictions: self.evictions,
            best_nmae: self.best_nmae_seen,
        }
    }

    /// Serialisable snapshot of the trained state (histories + scores).
    ///
    /// Restoring requires the same feature set and config; this is how a
    /// long-lived deployment persists its history database across restarts.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            touches: self
                .state
                .keys()
                .map(|key| self.touch.get(key).copied().unwrap_or(0))
                .collect(),
            clock: self.clock,
            evictions: self.evictions,
            censored: self.censored,
            best_nmae: self.best_nmae_seen,
            entries: self
                .state
                .iter()
                .map(|((fi, value), state)| (*fi, value.clone(), state.clone()))
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`snapshot`](Self::snapshot), replacing
    /// any current state.
    ///
    /// Returns `Err` with the offending feature index when the snapshot
    /// references features this predictor does not have.
    pub fn restore(&mut self, snapshot: Snapshot) -> Result<(), usize> {
        for (fi, _, _) in &snapshot.entries {
            if *fi >= self.features.len() {
                return Err(*fi);
            }
        }
        self.touch = BTreeMap::new();
        self.by_touch = BTreeSet::new();
        let mut max_touch = 0u64;
        for (i, (fi, value, _)) in snapshot.entries.iter().enumerate() {
            // Legacy snapshots carry no touches; those entries restore as
            // touch 0 and evict first, tie-broken on the key.
            let t = snapshot.touches.get(i).copied().unwrap_or(0);
            max_touch = max_touch.max(t);
            self.touch.insert((*fi, value.clone()), t);
            self.by_touch.insert((t, *fi, value.clone()));
        }
        self.clock = snapshot.clock.max(max_touch);
        self.evictions = snapshot.evictions;
        self.censored = snapshot.censored;
        self.state = snapshot
            .entries
            .into_iter()
            .map(|(fi, value, state)| ((fi, value), state))
            .collect();
        // Rebuild the running totals from the restored state (one-off scan —
        // exact, since eviction subtracts the departing history from both).
        self.observations = self.state.values().map(ValueState::count).sum();
        self.bin_merges = self.state.values().map(ValueState::bin_merges).sum();
        // The historical-best NMAE travels in the snapshot (a restarted
        // serve session must republish the same gauge); legacy snapshots
        // without it fall back to the current minimum.
        let current_min = self
            .state
            .values()
            .filter_map(ValueState::best_nmae)
            .min_by(f64::total_cmp);
        self.best_nmae_seen = match (snapshot.best_nmae, current_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Ok(())
    }
}

/// Serialisable predictor state (see [`Predictor::snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// `(feature index, feature value, state)` triples.
    entries: Vec<(usize, String, ValueState)>,
    /// Last-touch clock per entry (same order as `entries`); restoring
    /// entries with no recorded touch treats them as 0 (evicted first
    /// under a cap).
    touches: Vec<u64>,
    /// Logical observation clock at snapshot time.
    clock: u64,
    /// Evictions performed before the snapshot (gauge continuity).
    evictions: u64,
    /// Censored observations recorded before the snapshot.
    censored: u64,
    /// Lowest scored-expert NMAE ever seen (including evicted states and
    /// past scores); `Null` in legacy snapshots, which restore from the
    /// current minimum instead.
    best_nmae: Option<f64>,
}

/// Telemetry for one feature (see [`Predictor::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Feature name.
    pub feature: &'static str,
    /// Distinct values tracked for this feature.
    pub values: usize,
    /// Total runtimes folded into this feature's histories.
    pub observations: u64,
    /// Histogram bin merges across this feature's sketches.
    pub bin_merges: u64,
    /// Lowest scored-expert NMAE across this feature's values, `None`
    /// before any expert evaluation.
    pub best_nmae: Option<f64>,
}

/// O(1) aggregate telemetry (see [`Predictor::quick_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickStats {
    /// Distinct `(feature, value)` pairs tracked (memory gauge).
    pub tracked_values: usize,
    /// Total observations across all feature values.
    pub observations: u64,
    /// Total histogram bin merges across all sketches.
    pub bin_merges: u64,
    /// Censored (killed/failed) runs recorded as lower bounds only — never
    /// folded into the histories, so disjoint from `observations`.
    pub censored: u64,
    /// Feature-value states evicted by the LRU cap or TTL (memory gauge;
    /// their history left `observations`/`bin_merges` when they went).
    pub evictions: u64,
    /// Lowest scored-expert NMAE seen so far, `None` before any expert
    /// evaluation.
    pub best_nmae: Option<f64>,
}

/// Aggregate predictor telemetry (see [`Predictor::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorStats {
    /// Distinct `(feature, value)` pairs tracked (memory gauge).
    pub tracked_values: usize,
    /// Total observations across all feature values.
    pub observations: u64,
    /// Total histogram bin merges across all sketches.
    pub bin_merges: u64,
    /// Per-feature breakdown, in feature-set order.
    pub per_feature: Vec<FeatureStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_histogram::Dist;

    fn attrs(user: &str, name: &str) -> [(String, String); 4] {
        [
            ("user".to_owned(), user.to_owned()),
            ("job_name".to_owned(), name.to_owned()),
            ("priority".to_owned(), "5".to_owned()),
            ("tasks".to_owned(), "4".to_owned()),
        ]
    }

    #[test]
    fn no_history_yields_none() {
        let p = Predictor::new(PredictorConfig::default());
        assert!(p.predict(&attrs("alice", "etl")).is_none());
    }

    #[test]
    fn learns_a_constant_user() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..20 {
            p.observe(&attrs("alice", "etl"), 120.0);
        }
        let pred = p.predict(&attrs("alice", "etl")).unwrap();
        assert!((pred.point - 120.0).abs() < 1e-9);
        assert!((pred.distribution.mean() - 120.0).abs() < 1e-9);
        assert!(pred.history >= 20);
    }

    #[test]
    fn global_fallback_covers_unseen_users() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..10 {
            p.observe(&attrs("alice", "etl"), 100.0);
        }
        // Bob shares no attribute value with alice: only the global
        // feature has history for him.
        let bob = [
            ("user".to_owned(), "bob".to_owned()),
            ("job_name".to_owned(), "novel".to_owned()),
            ("priority".to_owned(), "9".to_owned()),
            ("tasks".to_owned(), "99".to_owned()),
        ];
        let pred = p.predict(&bob).unwrap();
        assert_eq!(pred.feature, "global");
        assert!((pred.point - 100.0).abs() < 1e-9);
    }

    #[test]
    fn selects_the_predictive_feature() {
        // job_name is noisy across users; user is perfectly predictive.
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..30 {
            p.observe(&attrs("alice", "shared"), 100.0);
            p.observe(
                &attrs(&format!("other{}", i % 5), "shared"),
                2000.0 + i as f64 * 37.0,
            );
        }
        let pred = p.predict(&attrs("alice", "shared")).unwrap();
        assert!(
            (pred.point - 100.0).abs() < 1.0,
            "picked alice-specific history, got {} via {}",
            pred.point,
            pred.feature
        );
        assert!(pred.feature.contains("user"));
    }

    #[test]
    fn distribution_covers_multi_modal_history() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..40 {
            let rt = if i % 2 == 0 { 60.0 } else { 600.0 };
            p.observe(&attrs("carol", "sweep"), rt);
        }
        let pred = p.predict(&attrs("carol", "sweep")).unwrap();
        let d = &pred.distribution;
        assert!(d.lower_bound() <= 60.0 + 1e-9);
        assert!(d.upper_bound() >= 600.0 - 1e-9);
        // Both modes carry mass (the histogram interpolation smears some
        // mass between the modes, hence the generous band).
        assert!(d.cdf(100.0) > 0.2 && d.cdf(100.0) < 0.8);
    }

    #[test]
    fn adapts_when_runtimes_drift() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..30 {
            p.observe(&attrs("dave", "etl"), 100.0);
        }
        for _ in 0..30 {
            p.observe(&attrs("dave", "etl"), 1000.0);
        }
        let pred = p.predict(&attrs("dave", "etl")).unwrap();
        // A recent-window expert should have won; estimate near new regime.
        assert!(
            pred.point > 800.0,
            "point {} via {:?}",
            pred.point,
            pred.estimator
        );
    }

    #[test]
    fn sample_cap_flows_through() {
        let mut p = Predictor::new(PredictorConfig {
            sample_cap: Some(5),
            ..PredictorConfig::default()
        });
        for _ in 0..50 {
            p.observe(&attrs("erin", "etl"), 500.0);
        }
        for _ in 0..5 {
            p.observe(&attrs("erin", "etl"), 50.0);
        }
        let pred = p.predict(&attrs("erin", "etl")).unwrap();
        assert_eq!(pred.history, 5);
        assert!(pred.distribution.upper_bound() <= 50.0 + 1e-9);
    }

    #[test]
    fn ignores_degenerate_runtimes() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("f", "g"), f64::NAN);
        p.observe(&attrs("f", "g"), -5.0);
        p.observe(&attrs("f", "g"), 0.0);
        assert!(p.predict(&attrs("f", "g")).is_none());
    }

    #[test]
    fn predict_point_matches_prediction_point() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..15 {
            p.observe(&attrs("zoe", "job"), 60.0 + i as f64);
        }
        let full = p.predict(&attrs("zoe", "job")).unwrap();
        let point = p.predict_point(&attrs("zoe", "job")).unwrap();
        assert_eq!(full.point, point);
    }

    #[test]
    fn untrusted_experts_fall_back_to_history_size() {
        // Below min_expert_evals, the fallback (most history, preferring
        // the median) is used rather than an unscored NMAE.
        let mut p = Predictor::new(PredictorConfig {
            min_expert_evals: 1000, // never trusted
            ..PredictorConfig::default()
        });
        for _ in 0..10 {
            p.observe(&attrs("kim", "x"), 80.0);
        }
        let pred = p.predict(&attrs("kim", "x")).unwrap();
        assert_eq!(pred.estimator, EstimatorKind::RecentMedian);
        assert!((pred.point - 80.0).abs() < 1e-9);
    }

    #[test]
    fn expert_scores_prefer_recent_regime_after_shift() {
        // After a regime change, the rolling/recent experts have lower
        // NMAE than the long-run average and win selection.
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..50 {
            p.observe(&attrs("lee", "y"), 100.0);
        }
        for _ in 0..50 {
            p.observe(&attrs("lee", "y"), 1000.0);
        }
        let pred = p.predict(&attrs("lee", "y")).unwrap();
        assert_ne!(pred.estimator, EstimatorKind::Average, "{pred:?}");
    }

    #[test]
    fn single_observation_still_predicts() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("solo", "once"), 77.0);
        let pred = p.predict(&attrs("solo", "once")).unwrap();
        assert!((pred.point - 77.0).abs() < 1e-9);
        assert_eq!(pred.history, 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..40 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 7) as f64);
        }
        let before = p.predict(&attrs("ana", "etl")).unwrap();
        let snap = p.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let mut fresh = Predictor::new(PredictorConfig::default());
        fresh.restore(serde_json::from_str(&json).unwrap()).unwrap();
        let after = fresh.predict(&attrs("ana", "etl")).unwrap();
        // JSON roundtrips can flip last-ulp ties between experts; the
        // restored prediction must agree to float noise.
        assert!((after.point - before.point).abs() < 1e-6);
        assert_eq!(after.feature, before.feature);
        assert_eq!(after.history, before.history);
    }

    #[test]
    fn restore_rejects_foreign_features() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("x", "y"), 10.0);
        let mut snap = p.snapshot();
        // Corrupt one entry with an out-of-range feature index.
        snap.entries
            .push((999, "v".into(), snap.entries[0].2.clone()));
        let mut fresh = Predictor::new(PredictorConfig::default());
        assert_eq!(fresh.restore(snap), Err(999));
    }

    #[test]
    fn stats_aggregate_history_and_scores() {
        let mut p = Predictor::new(PredictorConfig::default());
        let empty = p.stats();
        assert_eq!(empty.observations, 0);
        assert!(empty.per_feature.iter().all(|f| f.best_nmae.is_none()));

        for i in 0..200 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 90) as f64);
        }
        let stats = p.stats();
        assert_eq!(stats.tracked_values, p.tracked_values());
        assert!(stats.observations >= 200);
        // 200 distinct-ish values through an 80-bin sketch must compress.
        assert!(stats.bin_merges > 0);
        let user = stats
            .per_feature
            .iter()
            .find(|f| f.feature == "user")
            .unwrap();
        assert_eq!(user.values, 1);
        assert_eq!(user.observations, 200);
        assert!(user.best_nmae.is_some());
        // Aggregates must be reproducible despite the hash-map store.
        assert_eq!(p.stats(), stats);
    }

    #[test]
    fn quick_stats_match_full_stats() {
        let mut p = Predictor::new(PredictorConfig::default());
        assert_eq!(p.quick_stats().observations, 0);
        for i in 0..200 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 90) as f64);
            p.observe(&attrs("bo", "ml"), 40.0 + (i % 13) as f64);
        }
        let quick = p.quick_stats();
        let full = p.stats();
        assert_eq!(quick.tracked_values, full.tracked_values);
        assert_eq!(quick.observations, full.observations);
        assert_eq!(quick.bin_merges, full.bin_merges);
        // The historical minimum can only be at or below the current one.
        let current = full
            .per_feature
            .iter()
            .filter_map(|f| f.best_nmae)
            .min_by(f64::total_cmp);
        assert!(quick.best_nmae.is_some());
        assert!(quick.best_nmae <= current || current.is_none());
    }

    #[test]
    fn censored_observations_never_touch_the_histories() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..30 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 7) as f64);
        }
        let before = p.predict(&attrs("ana", "etl")).unwrap();
        let stats_before = p.stats();

        // A run killed after 12 s: lower bound only.
        p.observe_censored(&attrs("ana", "etl"), 12.0);
        p.observe_censored(&attrs("ana", "etl"), f64::NAN); // ignored
        p.observe_censored(&attrs("ana", "etl"), -3.0); // ignored

        assert_eq!(p.censored_observations(), 1);
        assert_eq!(p.quick_stats().censored, 1);
        // Histories, predictions, and expert scores are bit-identical:
        // the truncated runtime was not folded in as a completion.
        assert_eq!(p.stats(), stats_before);
        let after = p.predict(&attrs("ana", "etl")).unwrap();
        assert_eq!(after.point, before.point);
        assert_eq!(after.history, before.history);
        assert_eq!(p.quick_stats().observations, stats_before.observations);
    }

    #[test]
    fn quick_stats_match_full_stats_under_a_sample_cap() {
        let mut p = Predictor::new(PredictorConfig {
            sample_cap: Some(5),
            ..PredictorConfig::default()
        });
        for _ in 0..50 {
            p.observe(&attrs("erin", "etl"), 500.0);
        }
        assert_eq!(p.quick_stats().observations, p.stats().observations);
        assert_eq!(p.quick_stats().bin_merges, p.stats().bin_merges);
    }

    #[test]
    fn restore_rebuilds_quick_stats() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..60 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 31) as f64);
        }
        let snap = p.snapshot();
        let mut fresh = Predictor::new(PredictorConfig::default());
        fresh.restore(snap).unwrap();
        assert_eq!(fresh.quick_stats().observations, p.stats().observations);
        assert_eq!(fresh.quick_stats().bin_merges, p.stats().bin_merges);
        assert_eq!(fresh.quick_stats().tracked_values, p.tracked_values());
    }

    #[test]
    fn lru_cap_bounds_tracked_values() {
        let mut p = Predictor::new(PredictorConfig {
            max_tracked_values: Some(12),
            ..PredictorConfig::default()
        });
        for i in 0..200u32 {
            p.observe(&attrs(&format!("user{i}"), &format!("job{i}")), 50.0);
            assert!(
                p.tracked_values() <= 12,
                "cap exceeded at i={i}: {}",
                p.tracked_values()
            );
        }
        assert!(p.evicted_values() > 0);
        assert_eq!(p.quick_stats().evictions, p.evicted_values());
        // Totals shrank with the evicted history: the O(1) counters still
        // agree with a full scan of what remains.
        assert_eq!(p.quick_stats().observations, p.stats().observations);
        assert_eq!(p.quick_stats().bin_merges, p.stats().bin_merges);
        // The most recent user survived; ancient ones are gone.
        assert!(p.predict(&attrs("user199", "job199")).is_some());
    }

    #[test]
    fn ttl_evicts_stale_values() {
        // Each observe touches 5 features (4 attrs + global). TTL of 40
        // touches ≈ 8 observes: a value untouched for longer expires.
        let mut p = Predictor::new(PredictorConfig {
            value_ttl: Some(40),
            ..PredictorConfig::default()
        });
        p.observe(&attrs("old", "old_job"), 100.0);
        for i in 0..30u32 {
            p.observe(&attrs("fresh", &format!("job{i}")), 50.0);
        }
        assert!(p.evicted_values() > 0);
        // The stale user-specific history is gone; fresh history remains.
        let pred = p.predict(&attrs("old", "old_job")).unwrap();
        assert_ne!(pred.feature, "user", "stale per-user state must expire");
        assert!(p.predict(&attrs("fresh", "job0")).is_some());
    }

    #[test]
    fn snapshot_preserves_lru_order_across_restore() {
        let cfg = || PredictorConfig {
            max_tracked_values: Some(10),
            ..PredictorConfig::default()
        };
        let mut a = Predictor::new(cfg());
        for i in 0..40u32 {
            a.observe(&attrs(&format!("u{i}"), "shared"), 60.0);
        }
        let snap = a.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let mut b = Predictor::new(cfg());
        b.restore(serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(b.tracked_values(), a.tracked_values());
        assert_eq!(b.quick_stats().evictions, a.quick_stats().evictions);
        // Continue both identically: eviction decisions must match because
        // the touch order was persisted, not reconstructed.
        for i in 100..120u32 {
            a.observe(&attrs(&format!("u{i}"), "shared"), 60.0);
            b.observe(&attrs(&format!("u{i}"), "shared"), 60.0);
        }
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap(),
            "restored predictor must evolve byte-identically"
        );
    }

    #[test]
    fn snapshot_carries_censored_count() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("a", "b"), 10.0);
        p.observe_censored(&attrs("a", "b"), 3.0);
        let mut fresh = Predictor::new(PredictorConfig::default());
        fresh.restore(p.snapshot()).unwrap();
        assert_eq!(fresh.censored_observations(), 1);
    }

    #[test]
    fn tracked_values_grow_with_distinct_features() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("a", "x"), 10.0);
        let first = p.tracked_values();
        p.observe(&attrs("b", "y"), 10.0);
        assert!(p.tracked_values() > first);
    }
}
