//! Job features: attributes and attribute combinations.
//!
//! No single feature is predictive for every job (§4.1), so 3σPredict keeps
//! a history per feature. A feature is a (possibly empty) list of attribute
//! keys; its *value* for a job is the joined attribute values. The empty
//! feature (`global`) matches every job and guarantees a fallback history.

/// Source of job attributes (decouples the predictor from any particular
/// job representation).
pub trait AttributeSource {
    /// Looks up an attribute by key.
    fn get_attr(&self, key: &str) -> Option<&str>;
}

impl AttributeSource for [(String, String)] {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

impl AttributeSource for Vec<(String, String)> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.as_slice().get_attr(key)
    }
}

impl<const N: usize> AttributeSource for [(&str, &str); N] {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

impl<const N: usize> AttributeSource for [(String, String); N] {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.as_slice().get_attr(key)
    }
}

impl<T: AttributeSource + ?Sized> AttributeSource for &T {
    fn get_attr(&self, key: &str) -> Option<&str> {
        (**self).get_attr(key)
    }
}

/// One feature: a named combination of attribute keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Display name (e.g. `"user+job_name"`).
    pub name: &'static str,
    /// Attribute keys combined into the feature value.
    pub keys: Vec<&'static str>,
}

/// Extracts the feature's value for a job. Returns `None` when any
/// constituent attribute is missing; the empty-key feature yields `"*"`.
pub fn extract(feature: &Feature, attrs: &impl AttributeSource) -> Option<String> {
    if feature.keys.is_empty() {
        return Some("*".to_owned());
    }
    let mut out = String::new();
    for (i, key) in feature.keys.iter().enumerate() {
        let v = attrs.get_attr(key)?;
        if i > 0 {
            out.push('\u{1f}'); // unit separator: unambiguous join
        }
        out.push_str(v);
    }
    Some(out)
}

/// An ordered set of features, most generic last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    /// The features, in priority-agnostic order (selection is NMAE-driven).
    pub features: Vec<Feature>,
}

impl FeatureSet {
    /// The default feature set used throughout the evaluation: single
    /// attributes (user, job name, priority, resources requested) and the
    /// pairwise combinations the paper mentions, plus the global fallback.
    /// The trace's `class` attribute is deliberately *not* a feature (§5
    /// excludes the class-membership feature for fairness).
    pub fn standard() -> Self {
        let f = |name: &'static str, keys: &[&'static str]| Feature {
            name,
            keys: keys.to_vec(),
        };
        Self {
            features: vec![
                f("user+job_name", &["user", "job_name"]),
                f("user+tasks", &["user", "tasks"]),
                f("job_name+tasks", &["job_name", "tasks"]),
                f("user", &["user"]),
                f("job_name", &["job_name"]),
                f("tasks", &["tasks"]),
                f("priority", &["priority"]),
                f("global", &[]),
            ],
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_single_and_combined() {
        let attrs = [("user", "alice"), ("job_name", "etl"), ("tasks", "4")];
        let user = Feature {
            name: "user",
            keys: vec!["user"],
        };
        let combo = Feature {
            name: "user+job_name",
            keys: vec!["user", "job_name"],
        };
        assert_eq!(extract(&user, &attrs).unwrap(), "alice");
        assert_eq!(extract(&combo, &attrs).unwrap(), "alice\u{1f}etl");
    }

    #[test]
    fn missing_attribute_yields_none() {
        let attrs = [("user", "alice")];
        let combo = Feature {
            name: "user+job_name",
            keys: vec!["user", "job_name"],
        };
        assert_eq!(extract(&combo, &attrs), None);
    }

    #[test]
    fn global_feature_matches_everything() {
        let attrs: [(&str, &str); 0] = [];
        let global = Feature {
            name: "global",
            keys: vec![],
        };
        assert_eq!(extract(&global, &attrs).unwrap(), "*");
    }

    #[test]
    fn separator_prevents_value_collisions() {
        // ("ab", "c") must differ from ("a", "bc").
        let combo = Feature {
            name: "x+y",
            keys: vec!["x", "y"],
        };
        let a = extract(&combo, &[("x", "ab"), ("y", "c")]).unwrap();
        let b = extract(&combo, &[("x", "a"), ("y", "bc")]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn standard_set_has_global_fallback_and_no_class() {
        let fs = FeatureSet::standard();
        assert!(fs.features.iter().any(|f| f.keys.is_empty()));
        assert!(fs.features.iter().all(|f| !f.keys.contains(&"class")));
        assert!(!fs.is_empty());
    }
}
