//! 3σPredict: black-box runtime-distribution prediction from job history.
//!
//! For every incoming job, 3σPredict (§4.1) must hand the scheduler an
//! estimated *distribution* of the job's runtime, without user-provided
//! estimates or knowledge of job structure. It does so by
//!
//! 1. associating each job with multiple **features** — attributes such as
//!    the submitting user or job name, and attribute combinations
//!    ([`feature`]),
//! 2. maintaining, per feature *value*, a constant-memory history sketch of
//!    observed runtimes — a Ben-Haim/Tom-Tov streaming histogram plus the
//!    state of four point **estimators** (mean, median-of-recent, rolling
//!    EWMA with α = 0.6, average-of-recent-X) ([`expert`]),
//! 3. scoring every `feature-value:estimator` pair ("expert") online by the
//!    normalised mean absolute error of its past point estimates, and
//! 4. answering a prediction with the histogram of the expert with the
//!    lowest NMAE ([`predictor`]).
//!
//! The same machinery with the winning expert's *point* estimate is the
//! JVuPredict baseline the paper's `PointRealEst` scheduler uses.
//!
//! # Example
//!
//! ```
//! use threesigma_predict::{Predictor, PredictorConfig};
//! use threesigma_histogram::Dist;
//!
//! let mut predictor = Predictor::new(PredictorConfig::default());
//! for runtime in [100.0, 110.0, 95.0, 105.0] {
//!     predictor.observe(&[("user", "alice"), ("job_name", "etl")], runtime);
//! }
//! let p = predictor
//!     .predict(&[("user", "alice"), ("job_name", "etl")])
//!     .expect("history exists");
//! assert!((p.distribution.mean() - 102.5).abs() < 5.0);
//! ```

pub mod expert;
pub mod feature;
pub mod predictor;

pub use expert::{EstimatorKind, ValueState, ESTIMATORS};
pub use feature::{extract, AttributeSource, Feature, FeatureSet};
pub use predictor::{
    FeatureStats, Prediction, Predictor, PredictorConfig, PredictorStats, QuickStats, Snapshot,
};
