//! Per-feature-value history state and the four point estimators.
//!
//! A `feature-value:estimator` pair is an **expert** (§4.1). Each expert's
//! accuracy is tracked prequentially: when a new runtime arrives, every
//! estimator is first asked for its prediction, the normalised mean absolute
//! error accounts are updated, and only then is the observation folded in.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use threesigma_histogram::{Ewma, RuntimeDistribution, StreamingHistogram, StreamingMoments};

/// The four point-estimation techniques of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Mean of all observed runtimes.
    Average,
    /// Median of recent runtimes (streaming proxy for the true median).
    RecentMedian,
    /// Exponentially weighted rolling average (α = 0.6).
    Rolling,
    /// Average of the X most recent runtimes.
    RecentAverage,
}

/// All estimator kinds, in a stable order.
pub const ESTIMATORS: [EstimatorKind; 4] = [
    EstimatorKind::Average,
    EstimatorKind::RecentMedian,
    EstimatorKind::Rolling,
    EstimatorKind::RecentAverage,
];

impl EstimatorKind {
    /// Stable index into per-state score arrays.
    pub fn index(self) -> usize {
        match self {
            EstimatorKind::Average => 0,
            EstimatorKind::RecentMedian => 1,
            EstimatorKind::Rolling => 2,
            EstimatorKind::RecentAverage => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Average => "average",
            EstimatorKind::RecentMedian => "median",
            EstimatorKind::Rolling => "rolling",
            EstimatorKind::RecentAverage => "recent-avg",
        }
    }
}

/// NMAE accounting for one expert: `Σ|estimate − actual| / Σ actual`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Score {
    abs_err_sum: f64,
    actual_sum: f64,
    /// Number of scored predictions.
    pub evals: u64,
}

impl Score {
    /// Normalised mean absolute error, `None` before any evaluation.
    pub fn nmae(&self) -> Option<f64> {
        if self.evals == 0 || self.actual_sum <= 0.0 {
            return None;
        }
        Some(self.abs_err_sum / self.actual_sum)
    }

    fn update(&mut self, estimate: f64, actual: f64) {
        self.abs_err_sum += (estimate - actual).abs();
        self.actual_sum += actual;
        self.evals += 1;
    }
}

/// History state for one feature value: distribution sketch, estimator
/// state, and expert scores — all constant memory (§4.1 "Scalability"),
/// except in the explicit `sample_cap` mode used by the Fig. 11 study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueState {
    hist: StreamingHistogram,
    moments: StreamingMoments,
    ewma: Ewma,
    /// Last `recent_window` runtimes (median / recent-average experts).
    recent: VecDeque<f64>,
    recent_window: usize,
    /// When set, the distribution and estimators see only the last N
    /// samples (the E2E-SAMPLE-n sensitivity study, §6.4).
    capped: Option<VecDeque<f64>>,
    sample_cap: usize,
    scores: [Score; 4],
}

impl ValueState {
    /// Creates empty state.
    pub fn new(
        max_bins: usize,
        recent_window: usize,
        ewma_alpha: f64,
        sample_cap: Option<usize>,
    ) -> Self {
        assert!(recent_window >= 1, "recent window must hold a sample");
        Self {
            hist: StreamingHistogram::new(max_bins),
            moments: StreamingMoments::new(),
            ewma: Ewma::new(ewma_alpha),
            recent: VecDeque::with_capacity(recent_window),
            recent_window,
            capped: sample_cap.map(|n| VecDeque::with_capacity(n.max(1))),
            sample_cap: sample_cap.unwrap_or(0).max(1),
            scores: [Score::default(); 4],
        }
    }

    /// Number of runtimes observed (capped mode: within the window).
    pub fn count(&self) -> u64 {
        match &self.capped {
            Some(w) => w.len() as u64,
            None => self.hist.count(),
        }
    }

    /// Current point estimate of an estimator, `None` with no history.
    pub fn estimate(&self, kind: EstimatorKind) -> Option<f64> {
        if self.count() == 0 {
            return None;
        }
        match kind {
            EstimatorKind::Average => match &self.capped {
                Some(w) => Some(w.iter().sum::<f64>() / w.len() as f64),
                None => self.moments.mean(),
            },
            EstimatorKind::Rolling => match &self.capped {
                Some(w) => {
                    let alpha = 0.6;
                    let mut acc: Option<f64> = None;
                    for &x in w {
                        acc = Some(match acc {
                            None => x,
                            Some(prev) => alpha * x + (1.0 - alpha) * prev,
                        });
                    }
                    acc
                }
                None => self.ewma.value(),
            },
            EstimatorKind::RecentMedian => {
                let mut v: Vec<f64> = self.recent.iter().copied().collect();
                if v.is_empty() {
                    return None;
                }
                v.sort_by(f64::total_cmp);
                Some(if v.len() % 2 == 1 {
                    v[v.len() / 2]
                } else {
                    0.5 * (v[v.len() / 2 - 1] + v[v.len() / 2])
                })
            }
            EstimatorKind::RecentAverage => {
                if self.recent.is_empty() {
                    return None;
                }
                Some(self.recent.iter().sum::<f64>() / self.recent.len() as f64)
            }
        }
    }

    /// Expert score for an estimator.
    pub fn score(&self, kind: EstimatorKind) -> Score {
        self.scores[kind.index()]
    }

    /// Histogram bin merges performed by this value's sketch (how lossy
    /// the constant-memory compression has been).
    pub fn bin_merges(&self) -> u64 {
        self.hist.merge_count()
    }

    /// Lowest NMAE among this value's scored experts, `None` when no
    /// expert has been evaluated yet.
    pub fn best_nmae(&self) -> Option<f64> {
        self.scores
            .iter()
            .filter_map(Score::nmae)
            .min_by(f64::total_cmp)
    }

    /// Scores all estimators against `runtime`, then folds it into history.
    pub fn observe(&mut self, runtime: f64) {
        debug_assert!(runtime > 0.0 && runtime.is_finite());
        for kind in ESTIMATORS {
            if let Some(est) = self.estimate(kind) {
                self.scores[kind.index()].update(est, runtime);
            }
        }
        self.hist.insert(runtime);
        self.moments.push(runtime);
        self.ewma.push(runtime);
        if self.recent.len() == self.recent_window {
            self.recent.pop_front();
        }
        self.recent.push_back(runtime);
        if let Some(w) = &mut self.capped {
            while w.len() >= self.sample_cap {
                w.pop_front();
            }
            w.push_back(runtime);
        }
    }

    /// Empirical runtime distribution of this feature value, `None` with no
    /// history.
    pub fn distribution(&self) -> Option<RuntimeDistribution> {
        match &self.capped {
            Some(w) => {
                let samples: Vec<f64> = w.iter().copied().collect();
                RuntimeDistribution::from_samples(&samples, 80)
            }
            None => {
                if self.hist.is_empty() {
                    None
                } else {
                    Some(RuntimeDistribution::Empirical(self.hist.clone()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_histogram::Dist;

    fn state() -> ValueState {
        ValueState::new(80, 5, 0.6, None)
    }

    #[test]
    fn empty_state_has_no_estimates() {
        let s = state();
        for kind in ESTIMATORS {
            assert_eq!(s.estimate(kind), None, "{kind:?}");
        }
        assert!(s.distribution().is_none());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn average_tracks_full_history() {
        let mut s = state();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.observe(v);
        }
        assert!((s.estimate(EstimatorKind::Average).unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn recent_estimators_use_the_window() {
        let mut s = state();
        // Window of 5; first 10 observations at 100, then 5 at 10.
        for _ in 0..10 {
            s.observe(100.0);
        }
        for _ in 0..5 {
            s.observe(10.0);
        }
        assert!((s.estimate(EstimatorKind::RecentMedian).unwrap() - 10.0).abs() < 1e-9);
        assert!((s.estimate(EstimatorKind::RecentAverage).unwrap() - 10.0).abs() < 1e-9);
        // Average still remembers the old regime.
        assert!(s.estimate(EstimatorKind::Average).unwrap() > 50.0);
    }

    #[test]
    fn rolling_follows_recent_values_faster_than_average() {
        let mut s = state();
        for _ in 0..20 {
            s.observe(100.0);
        }
        s.observe(10.0);
        let rolling = s.estimate(EstimatorKind::Rolling).unwrap();
        let average = s.estimate(EstimatorKind::Average).unwrap();
        assert!(rolling < average, "rolling {rolling} vs avg {average}");
        // 0.6·10 + 0.4·100 = 46.
        assert!((rolling - 46.0).abs() < 1e-9);
    }

    #[test]
    fn even_window_median_interpolates() {
        let mut s = ValueState::new(80, 4, 0.6, None);
        for v in [1.0, 2.0, 3.0, 10.0] {
            s.observe(v);
        }
        assert!((s.estimate(EstimatorKind::RecentMedian).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn nmae_scores_prequentially() {
        let mut s = state();
        s.observe(100.0); // no estimators defined yet → no scores
        assert_eq!(s.score(EstimatorKind::Average).evals, 0);
        s.observe(100.0); // average predicted 100 → perfect
        assert_eq!(s.score(EstimatorKind::Average).evals, 1);
        assert!((s.score(EstimatorKind::Average).nmae().unwrap() - 0.0).abs() < 1e-12);
        s.observe(200.0); // average predicted 100, actual 200 → |err| 100
        let nmae = s.score(EstimatorKind::Average).nmae().unwrap();
        // (0 + 100) / (100 + 200) = 1/3.
        assert!((nmae - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_reflects_history() {
        let mut s = state();
        for v in [10.0, 20.0, 30.0] {
            s.observe(v);
        }
        let d = s.distribution().unwrap();
        assert_eq!(d.lower_bound(), 10.0);
        assert_eq!(d.upper_bound(), 30.0);
        assert!((d.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sample_cap_limits_visible_history() {
        let mut s = ValueState::new(80, 5, 0.6, Some(5));
        for _ in 0..50 {
            s.observe(1000.0);
        }
        for _ in 0..5 {
            s.observe(10.0);
        }
        assert_eq!(s.count(), 5);
        let d = s.distribution().unwrap();
        assert_eq!(d.upper_bound(), 10.0, "old samples evicted");
        assert!((s.estimate(EstimatorKind::Average).unwrap() - 10.0).abs() < 1e-9);
        assert!((s.estimate(EstimatorKind::Rolling).unwrap() - 10.0).abs() < 1e-9);
    }
}
