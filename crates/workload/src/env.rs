//! Per-environment job-class mixtures.
//!
//! Substitutes for the three proprietary traces (§2.1, §5): each environment
//! is a mixture of job classes with a per-(class, user) runtime scale and
//! per-job noise whose magnitude controls how predictable the class is. The
//! mixtures are tuned so the generated traces reproduce the published
//! summary statistics:
//!
//! * **Google** — mostly moderately predictable batch/analytics classes plus
//!   a highly regular periodic class; ≈ 8 % of runtime estimates end up off
//!   by 2× or more.
//! * **HedgeFund** — exploratory financial analytics: high per-job noise and
//!   several bimodal classes (parameter sweeps that either converge quickly
//!   or run long); fewest accurate estimates, both error tails heavy.
//! * **Mustang** — HPC capacity computing: large production-simulation
//!   classes with tiny noise (very accurate estimates) next to volatile
//!   dev/test and experimental classes that produce a fat error tail
//!   (≈ 23 % beyond +95 %).

use serde::{Deserialize, Serialize};

/// A second runtime mode: with probability `prob` the job's runtime is
/// multiplied by `factor` (models sweep jobs that occasionally run long).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bimodal {
    /// Runtime multiplier of the slow mode.
    pub factor: f64,
    /// Probability of the slow mode.
    pub prob: f64,
}

/// One job class of an environment mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobClass {
    /// Base program name (becomes the `job_name` attribute, with a variant
    /// suffix per user).
    pub name: &'static str,
    /// Mixture weight (relative).
    pub weight: f64,
    /// Centre of the per-(class, user) runtime scale, `ln` seconds.
    pub ln_runtime_mu: f64,
    /// Spread of per-user scales around the centre (`ln` space).
    pub scale_sigma: f64,
    /// Per-job log-normal noise within a (class, user) subgroup — the knob
    /// that controls estimate accuracy for this class.
    pub noise_sigma: f64,
    /// Optional slow second mode.
    pub bimodal: Option<Bimodal>,
    /// Gang width choices `(tasks, weight)`.
    pub tasks: Vec<(u32, f64)>,
    /// Number of distinct users submitting this class.
    pub num_users: usize,
    /// Scheduling priority attribute (0–9) recorded on the job.
    pub priority: u8,
}

/// The three trace environments of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Google 2011 cluster trace profile.
    Google,
    /// Quantitative hedge-fund analytics clusters (2016).
    HedgeFund,
    /// LANL Mustang HPC capacity cluster (2011–2016).
    Mustang,
}

impl Environment {
    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Environment::Google => "Google",
            Environment::HedgeFund => "HedgeFund",
            Environment::Mustang => "Mustang",
        }
    }

    /// The class mixture for this environment.
    pub fn classes(&self) -> Vec<JobClass> {
        let ln = |secs: f64| secs.ln();
        match self {
            Environment::Google => vec![
                JobClass {
                    name: "batch_short",
                    weight: 0.30,
                    ln_runtime_mu: ln(90.0),
                    scale_sigma: 0.4,
                    noise_sigma: 0.30,
                    bimodal: None,
                    tasks: vec![(1, 0.4), (2, 0.3), (4, 0.2), (8, 0.1)],
                    num_users: 40,
                    priority: 2,
                },
                JobClass {
                    name: "batch_med",
                    weight: 0.25,
                    ln_runtime_mu: ln(600.0),
                    scale_sigma: 0.5,
                    noise_sigma: 0.35,
                    bimodal: None,
                    tasks: vec![(2, 0.3), (4, 0.3), (8, 0.25), (16, 0.15)],
                    num_users: 30,
                    priority: 4,
                },
                JobClass {
                    name: "analytics",
                    weight: 0.15,
                    ln_runtime_mu: ln(1800.0),
                    scale_sigma: 0.6,
                    noise_sigma: 0.45,
                    bimodal: None,
                    tasks: vec![(4, 0.3), (8, 0.3), (16, 0.25), (32, 0.15)],
                    num_users: 20,
                    priority: 4,
                },
                JobClass {
                    name: "content_gen",
                    weight: 0.10,
                    ln_runtime_mu: ln(4000.0),
                    scale_sigma: 0.4,
                    noise_sigma: 0.25,
                    bimodal: None,
                    tasks: vec![(8, 0.4), (16, 0.3), (32, 0.3)],
                    num_users: 8,
                    priority: 8,
                },
                JobClass {
                    name: "periodic",
                    weight: 0.12,
                    ln_runtime_mu: ln(300.0),
                    scale_sigma: 0.3,
                    noise_sigma: 0.08,
                    bimodal: None,
                    tasks: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
                    num_users: 10,
                    priority: 8,
                },
                JobClass {
                    name: "dev_test",
                    weight: 0.08,
                    ln_runtime_mu: ln(120.0),
                    scale_sigma: 0.8,
                    noise_sigma: 0.90,
                    bimodal: Some(Bimodal {
                        factor: 8.0,
                        prob: 0.12,
                    }),
                    tasks: vec![(1, 0.6), (2, 0.25), (4, 0.15)],
                    num_users: 25,
                    priority: 1,
                },
            ],
            Environment::HedgeFund => vec![
                JobClass {
                    name: "backtest",
                    weight: 0.30,
                    ln_runtime_mu: ln(240.0),
                    scale_sigma: 0.7,
                    noise_sigma: 0.55,
                    bimodal: Some(Bimodal {
                        factor: 5.0,
                        prob: 0.10,
                    }),
                    tasks: vec![(1, 0.7), (2, 0.2), (4, 0.1)],
                    num_users: 30,
                    priority: 3,
                },
                JobClass {
                    name: "pricing",
                    weight: 0.20,
                    ln_runtime_mu: ln(60.0),
                    scale_sigma: 0.5,
                    noise_sigma: 0.35,
                    bimodal: None,
                    tasks: vec![(1, 0.8), (2, 0.2)],
                    num_users: 20,
                    priority: 6,
                },
                JobClass {
                    name: "risk_eod",
                    weight: 0.15,
                    ln_runtime_mu: ln(2400.0),
                    scale_sigma: 0.4,
                    noise_sigma: 0.35,
                    bimodal: None,
                    tasks: vec![(2, 0.4), (4, 0.4), (8, 0.2)],
                    num_users: 8,
                    priority: 9,
                },
                JobClass {
                    name: "research",
                    weight: 0.20,
                    ln_runtime_mu: ln(600.0),
                    scale_sigma: 1.0,
                    noise_sigma: 0.85,
                    bimodal: Some(Bimodal {
                        factor: 8.0,
                        prob: 0.14,
                    }),
                    tasks: vec![(1, 0.6), (2, 0.25), (4, 0.15)],
                    num_users: 35,
                    priority: 1,
                },
                JobClass {
                    name: "dataload",
                    weight: 0.15,
                    ln_runtime_mu: ln(900.0),
                    scale_sigma: 0.5,
                    noise_sigma: 0.40,
                    bimodal: Some(Bimodal {
                        factor: 4.0,
                        prob: 0.10,
                    }),
                    tasks: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
                    num_users: 10,
                    priority: 7,
                },
            ],
            Environment::Mustang => vec![
                JobClass {
                    name: "prod_sim_a",
                    weight: 0.25,
                    ln_runtime_mu: ln(1800.0),
                    scale_sigma: 0.3,
                    noise_sigma: 0.04,
                    bimodal: None,
                    tasks: vec![(8, 0.3), (16, 0.3), (32, 0.25), (64, 0.15)],
                    num_users: 12,
                    priority: 8,
                },
                JobClass {
                    name: "prod_sim_b",
                    weight: 0.20,
                    ln_runtime_mu: ln(7200.0),
                    scale_sigma: 0.35,
                    noise_sigma: 0.05,
                    bimodal: None,
                    tasks: vec![(16, 0.3), (32, 0.4), (64, 0.3)],
                    num_users: 10,
                    priority: 8,
                },
                JobClass {
                    name: "campaign",
                    weight: 0.15,
                    ln_runtime_mu: ln(14400.0),
                    scale_sigma: 0.3,
                    noise_sigma: 0.06,
                    bimodal: None,
                    tasks: vec![(32, 0.4), (64, 0.4), (128, 0.2)],
                    num_users: 6,
                    priority: 9,
                },
                JobClass {
                    name: "analysis",
                    weight: 0.15,
                    ln_runtime_mu: ln(600.0),
                    scale_sigma: 0.6,
                    noise_sigma: 0.50,
                    bimodal: None,
                    tasks: vec![(1, 0.4), (2, 0.3), (4, 0.2), (8, 0.1)],
                    num_users: 20,
                    priority: 4,
                },
                JobClass {
                    name: "devtest",
                    weight: 0.15,
                    ln_runtime_mu: ln(120.0),
                    scale_sigma: 0.9,
                    noise_sigma: 1.40,
                    bimodal: Some(Bimodal {
                        factor: 15.0,
                        prob: 0.18,
                    }),
                    tasks: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
                    num_users: 25,
                    priority: 1,
                },
                JobClass {
                    name: "experimental",
                    weight: 0.10,
                    ln_runtime_mu: ln(3600.0),
                    scale_sigma: 1.0,
                    noise_sigma: 1.60,
                    bimodal: Some(Bimodal {
                        factor: 8.0,
                        prob: 0.25,
                    }),
                    tasks: vec![(4, 0.4), (8, 0.3), (16, 0.3)],
                    num_users: 15,
                    priority: 2,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_environment_has_a_valid_mixture() {
        for env in [
            Environment::Google,
            Environment::HedgeFund,
            Environment::Mustang,
        ] {
            let classes = env.classes();
            assert!(!classes.is_empty());
            let total: f64 = classes.iter().map(|c| c.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{env:?} weights sum {total}");
            for c in &classes {
                assert!(c.noise_sigma >= 0.0);
                assert!(c.num_users > 0);
                assert!(!c.tasks.is_empty());
                assert!(c.tasks.iter().all(|(n, w)| *n > 0 && *w > 0.0));
                if let Some(b) = c.bimodal {
                    assert!(b.factor > 1.0 && (0.0..1.0).contains(&b.prob));
                }
            }
        }
    }

    #[test]
    fn mustang_has_both_very_stable_and_very_volatile_classes() {
        let classes = Environment::Mustang.classes();
        let stable_weight: f64 = classes
            .iter()
            .filter(|c| c.noise_sigma < 0.1)
            .map(|c| c.weight)
            .sum();
        let volatile_weight: f64 = classes
            .iter()
            .filter(|c| c.noise_sigma > 1.0)
            .map(|c| c.weight)
            .sum();
        assert!(stable_weight >= 0.5, "Mustang is mostly predictable");
        assert!(volatile_weight >= 0.2, "but has a fat unpredictable tail");
    }

    #[test]
    fn hedgefund_is_least_predictable_on_average() {
        let avg = |e: Environment| {
            let cs = e.classes();
            cs.iter().map(|c| c.weight * c.noise_sigma).sum::<f64>()
        };
        assert!(avg(Environment::HedgeFund) > avg(Environment::Google));
    }
}
