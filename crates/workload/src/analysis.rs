//! Trace analysis: the statistics behind Fig. 2.
//!
//! Runtime CDFs, per-feature coefficient-of-variation distributions, and the
//! estimate-error histogram that motivates distribution-based scheduling
//! (§2.1). These run over generated traces in the `fig02_traces` bench to
//! verify the synthetic environments reproduce the published shapes.

use std::collections::HashMap;

use threesigma_cluster::JobSpec;
use threesigma_histogram::coefficient_of_variation;

/// Empirical CDF points `(runtime, cumulative fraction)` for Fig. 2(a).
pub fn runtime_cdf(jobs: &[JobSpec]) -> Vec<(f64, f64)> {
    let mut rts: Vec<f64> = jobs.iter().map(|j| j.duration).collect();
    rts.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = rts.len() as f64;
    rts.iter()
        .enumerate()
        .map(|(i, &r)| (r, (i + 1) as f64 / n))
        .collect()
}

/// Coefficient of variation of job runtimes within each group sharing the
/// same value of `attribute` (Fig. 2(b): `"user"`, Fig. 2(c): `"tasks"`).
/// Groups smaller than `min_group` jobs are skipped. Returned sorted
/// ascending (ready to plot as a CDF).
pub fn cov_by_attribute(jobs: &[JobSpec], attribute: &str, min_group: usize) -> Vec<f64> {
    let mut groups: HashMap<&str, Vec<f64>> = HashMap::new();
    for j in jobs {
        if let Some(v) = j.attributes.get(attribute) {
            groups.entry(v).or_default().push(j.duration);
        }
    }
    let mut covs: Vec<f64> = groups
        .values()
        .filter(|g| g.len() >= min_group.max(2))
        .filter_map(|g| coefficient_of_variation(g))
        .collect();
    covs.sort_by(|a, b| a.partial_cmp(b).expect("finite CoV"));
    covs
}

/// Fraction (0–1) of groups with CoV above `threshold` (CoV > 1 is the
/// paper's "high variability" line).
pub fn high_variability_fraction(covs: &[f64], threshold: f64) -> f64 {
    if covs.is_empty() {
        return 0.0;
    }
    covs.iter().filter(|c| **c > threshold).count() as f64 / covs.len() as f64
}

/// Percent estimate error, `(estimate − actual) / actual × 100` (Fig. 2(d)).
pub fn estimate_error_pct(estimate: f64, actual: f64) -> f64 {
    assert!(actual > 0.0, "actual runtime must be positive");
    (estimate - actual) / actual * 100.0
}

/// Fig. 2(d)'s histogram: buckets centred at −100, −75, …, +75 (each
/// covering ±12.5), plus a `tail` bucket for errors > +95 %.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorHistogram {
    /// `(bucket centre, fraction of jobs as a percentage)`.
    pub buckets: Vec<(f64, f64)>,
    /// Percentage of jobs with error > +95 %.
    pub tail_pct: f64,
}

/// Bucket centres used by [`error_histogram`].
pub const ERROR_BUCKET_CENTERS: [f64; 8] = [-100.0, -75.0, -50.0, -25.0, 0.0, 25.0, 50.0, 75.0];

/// Builds the Fig. 2(d) histogram from percent errors.
pub fn error_histogram(errors: &[f64]) -> ErrorHistogram {
    let mut counts = [0usize; 8];
    let mut tail = 0usize;
    for &e in errors {
        if e > 95.0 {
            tail += 1;
            continue;
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in ERROR_BUCKET_CENTERS.iter().enumerate() {
            let d = (e - c).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        counts[best] += 1;
    }
    let n = errors.len().max(1) as f64;
    ErrorHistogram {
        buckets: ERROR_BUCKET_CENTERS
            .iter()
            .zip(counts)
            .map(|(c, k)| (*c, 100.0 * k as f64 / n))
            .collect(),
        tail_pct: 100.0 * tail as f64 / n,
    }
}

/// Fraction (0–1) of estimates off by at least `factor` in either direction
/// (the paper's "8–23 % off by a factor of two or more" uses `factor = 2`).
pub fn fraction_off_by_factor(estimates_and_actuals: &[(f64, f64)], factor: f64) -> f64 {
    assert!(factor >= 1.0);
    if estimates_and_actuals.is_empty() {
        return 0.0;
    }
    let off = estimates_and_actuals
        .iter()
        .filter(|(est, act)| {
            let ratio = est / act;
            ratio >= factor || ratio <= 1.0 / factor
        })
        .count();
    off as f64 / estimates_and_actuals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{Attributes, JobKind};

    fn job(id: u64, duration: f64, user: &str) -> JobSpec {
        JobSpec::new(id, 0.0, 1, duration, JobKind::BestEffort)
            .with_attributes(Attributes::new().with("user", user))
    }

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let jobs = vec![job(1, 10.0, "a"), job(2, 5.0, "a"), job(3, 20.0, "b")];
        let cdf = runtime_cdf(&jobs);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 5.0);
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn cov_groups_by_attribute() {
        let jobs = vec![
            job(1, 10.0, "steady"),
            job(2, 10.0, "steady"),
            job(3, 10.0, "steady"),
            job(4, 1.0, "wild"),
            job(5, 100.0, "wild"),
            job(6, 7.0, "loner"), // group of 1: skipped
        ];
        let covs = cov_by_attribute(&jobs, "user", 2);
        assert_eq!(covs.len(), 2);
        assert!(covs[0] < 1e-9, "steady user has zero CoV");
        assert!(covs[1] > 0.9, "wild user has high CoV");
        assert!((high_variability_fraction(&covs, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_pct_matches_paper_definition() {
        assert!((estimate_error_pct(200.0, 100.0) - 100.0).abs() < 1e-12);
        assert!((estimate_error_pct(50.0, 100.0) + 50.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_tail() {
        let errors = vec![0.0, 3.0, -26.0, 120.0, 96.0, -100.0, 74.0];
        let h = error_histogram(&errors);
        let total: f64 = h.buckets.iter().map(|(_, f)| f).sum::<f64>() + h.tail_pct;
        assert!((total - 100.0).abs() < 1e-9);
        // 120 and 96 land in the tail.
        assert!((h.tail_pct - 2.0 / 7.0 * 100.0).abs() < 1e-9);
        let at = |c: f64| {
            h.buckets
                .iter()
                .find(|(bc, _)| *bc == c)
                .map(|(_, f)| *f)
                .unwrap()
        };
        assert!(at(0.0) > 0.0);
        assert!(at(-25.0) > 0.0);
        assert!(at(75.0) > 0.0);
        assert!(at(-100.0) > 0.0);
    }

    #[test]
    fn empty_inputs_are_calm() {
        let h = error_histogram(&[]);
        assert_eq!(h.tail_pct, 0.0);
        assert!(h.buckets.iter().all(|(_, f)| *f == 0.0));
        assert!(cov_by_attribute(&[], "user", 2).is_empty());
        assert!(runtime_cdf(&[]).is_empty());
        assert_eq!(high_variability_fraction(&[], 1.0), 0.0);
    }

    #[test]
    fn min_group_filters_small_groups() {
        let jobs = vec![
            job(1, 10.0, "a"),
            job(2, 12.0, "a"),
            job(3, 14.0, "a"),
            job(4, 5.0, "b"),
            job(5, 6.0, "b"),
        ];
        assert_eq!(cov_by_attribute(&jobs, "user", 3).len(), 1);
        assert_eq!(cov_by_attribute(&jobs, "user", 2).len(), 2);
        // Unknown attribute → no groups.
        assert!(cov_by_attribute(&jobs, "nonexistent", 1).is_empty());
    }

    #[test]
    fn boundary_error_goes_to_tail_only_above_95() {
        let h = error_histogram(&[95.0, 95.1]);
        assert!((h.tail_pct - 50.0).abs() < 1e-9);
        // 95.0 lands in the 75-centred bucket.
        let at75 = h.buckets.iter().find(|(c, _)| *c == 75.0).unwrap().1;
        assert!((at75 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn factor_of_two_detection() {
        let pairs = vec![
            (100.0, 100.0), // exact
            (210.0, 100.0), // 2.1× over
            (45.0, 100.0),  // 2.2× under
            (130.0, 100.0), // within 2×
        ];
        assert!((fraction_off_by_factor(&pairs, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_off_by_factor(&[], 2.0), 0.0);
    }
}
