//! Synthetic trace generation (the paper's E2E workload recipe, §5).
//!
//! Jobs are drawn from an environment's class mixture: each (class, user)
//! subgroup has a persistent runtime scale, each job adds class-dependent
//! log-normal noise (and an occasional slow mode), arrival times follow a
//! hyperexponential process with `c_a² = 4`, and every job is labelled SLO
//! (with a deadline at `submit + runtime · (1 + slack)`) or best-effort.
//! SLO jobs carry a soft preference for 75 % of the cluster and run 1.5×
//! longer elsewhere. The arrival rate is calibrated so the offered load
//! (machine-time submitted / cluster capacity) matches the target.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use threesigma_cluster::{Attributes, JobKind, JobSpec, PartitionId};

use crate::env::{Environment, JobClass};
use crate::sampling::{lognormal, standard_normal, weighted_choice, HyperExp};

/// How the arrival rate is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalTarget {
    /// Offered load as a fraction of cluster space-time capacity (the
    /// paper's nominal setting is 1.4).
    Load(f64),
    /// Fixed submission rate (the SCALABILITY-n workloads of §6.5).
    JobsPerHour(f64),
}

/// Full workload recipe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Which environment's class mixture to draw from.
    pub env: Environment,
    /// Total nodes of the target cluster (jobs needing more are redrawn, as
    /// the paper filters jobs larger than the cluster).
    pub cluster_nodes: u32,
    /// Number of partitions (racks) preference sets are expressed over.
    pub num_partitions: usize,
    /// Trace length in seconds (arrivals stop after this).
    pub duration: f64,
    /// Arrival-rate target.
    pub arrival: ArrivalTarget,
    /// Squared CoV of inter-arrival times (paper: 4).
    pub arrival_cov2: f64,
    /// Fraction of jobs that are SLO (paper: even mixture, 0.5).
    pub slo_fraction: f64,
    /// Deadline-slack choices, drawn uniformly per SLO job
    /// (paper default: 20 %, 40 %, 60 %, 80 %).
    pub deadline_slacks: Vec<f64>,
    /// Fraction of partitions an SLO job prefers (paper: 0.75).
    pub preferred_fraction: f64,
    /// Runtime multiplier off-preferred (paper: 1.5).
    pub nonpreferred_slowdown: f64,
    /// Utility weight of SLO jobs relative to BE jobs (weight 1).
    pub slo_weight: f64,
    /// Number of history jobs generated for predictor pre-training.
    pub pretrain_jobs: usize,
    /// RNG seed; everything is deterministic given the config.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's E2E defaults for a 256-node, 8-rack cluster.
    pub fn e2e(env: Environment, seed: u64) -> Self {
        Self {
            env,
            cluster_nodes: 256,
            num_partitions: 8,
            duration: 5.0 * 3600.0,
            arrival: ArrivalTarget::Load(1.4),
            arrival_cov2: 4.0,
            slo_fraction: 0.5,
            deadline_slacks: vec![0.2, 0.4, 0.6, 0.8],
            preferred_fraction: 0.75,
            nonpreferred_slowdown: 1.5,
            slo_weight: 10.0,
            pretrain_jobs: 3000,
            seed,
        }
    }

    /// Uses a single fixed deadline slack (the DEADLINE-n workloads, Fig. 8).
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.deadline_slacks = vec![slack];
        self
    }

    /// Overrides the offered load (the E2E-LOAD-ℓ workloads, Fig. 10).
    pub fn with_load(mut self, load: f64) -> Self {
        self.arrival = ArrivalTarget::Load(load);
        self
    }

    /// Overrides the trace length.
    pub fn with_duration(mut self, secs: f64) -> Self {
        self.duration = secs;
        self
    }
}

/// A generated trace: pre-training history plus the experiment jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Jobs completed "before the trace window": fed to predictors as
    /// history, never simulated (§5 "Estimates").
    pub pretrain: Vec<JobSpec>,
    /// The jobs injected into the simulated cluster.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Offered load: submitted machine-time over cluster space-time.
    pub fn offered_load(&self, cluster_nodes: u32, duration: f64) -> f64 {
        let work: f64 = self.jobs.iter().map(|j| j.tasks as f64 * j.duration).sum();
        work / (cluster_nodes as f64 * duration)
    }

    /// Serialises the trace to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialises")
    }

    /// Parses a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the trace to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a trace from a JSON file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        Self::from_json(&data).map_err(std::io::Error::other)
    }
}

/// One (class, user) subgroup with its persistent runtime scale.
struct UserGroup {
    class_idx: usize,
    user: String,
    job_name: String,
    scale: f64,
}

struct BodySampler {
    classes: Vec<JobClass>,
    class_weights: Vec<f64>,
    /// Groups laid out per class: `group_offsets[c] .. group_offsets[c+1]`.
    groups: Vec<UserGroup>,
    group_offsets: Vec<usize>,
    max_tasks: u32,
}

struct JobBody {
    tasks: u32,
    duration: f64,
    attributes: Attributes,
}

impl BodySampler {
    fn new(env: Environment, max_tasks: u32, rng: &mut StdRng) -> Self {
        let classes = env.classes();
        let class_weights: Vec<f64> = classes.iter().map(|c| c.weight).collect();
        let mut groups = Vec::new();
        let mut group_offsets = vec![0];
        for (ci, class) in classes.iter().enumerate() {
            for u in 0..class.num_users {
                let scale = (class.ln_runtime_mu + class.scale_sigma * standard_normal(rng)).exp();
                groups.push(UserGroup {
                    class_idx: ci,
                    user: format!("{}_u{}", class.name, u),
                    job_name: format!("{}_v{}", class.name, u % 5),
                    scale,
                });
            }
            group_offsets.push(groups.len());
        }
        Self {
            classes,
            class_weights,
            groups,
            group_offsets,
            max_tasks,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> JobBody {
        let ci = weighted_choice(rng, &self.class_weights);
        let class = &self.classes[ci];
        let lo = self.group_offsets[ci];
        let hi = self.group_offsets[ci + 1];
        let group = &self.groups[lo + (rng.random::<u64>() as usize) % (hi - lo)];
        debug_assert_eq!(group.class_idx, ci);

        let mut duration = group.scale * lognormal(rng, 0.0, class.noise_sigma);
        if let Some(b) = class.bimodal {
            if rng.random::<f64>() < b.prob {
                duration *= b.factor;
            }
        }
        let duration = duration.clamp(1.0, 30.0 * 86_400.0);

        // Redraw oversized gangs (the paper filters jobs larger than the
        // cluster out of the trace).
        let weights: Vec<f64> = class.tasks.iter().map(|(_, w)| *w).collect();
        let mut tasks = class.tasks[weighted_choice(rng, &weights)].0;
        for _ in 0..8 {
            if tasks <= self.max_tasks {
                break;
            }
            tasks = class.tasks[weighted_choice(rng, &weights)].0;
        }
        let tasks = tasks.min(self.max_tasks);

        let attributes = Attributes::new()
            .with("user", group.user.clone())
            .with("job_name", group.job_name.clone())
            .with("priority", class.priority.to_string())
            .with("tasks", tasks.to_string())
            // Recorded for analysis; honest predictors must not use it (the
            // paper excludes the class-membership feature, §5).
            .with("class", class.name);

        JobBody {
            tasks,
            duration,
            attributes,
        }
    }

    /// Mean machine-seconds per job, estimated by Monte Carlo.
    fn mean_machine_seconds(&self, rng: &mut StdRng, samples: usize) -> f64 {
        let total: f64 = (0..samples)
            .map(|_| {
                let b = self.sample(rng);
                b.tasks as f64 * b.duration
            })
            .sum();
        total / samples as f64
    }
}

/// Generates a trace from a config. Deterministic in `config.seed`.
pub fn generate(config: &WorkloadConfig) -> Trace {
    assert!(config.duration > 0.0, "duration must be positive");
    assert!(
        (0.0..=1.0).contains(&config.slo_fraction),
        "slo_fraction in [0,1]"
    );
    assert!(
        !config.deadline_slacks.is_empty(),
        "need at least one deadline slack"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampler = BodySampler::new(config.env, config.cluster_nodes, &mut rng);

    // Calibrate the arrival rate.
    let mut calib_rng = StdRng::seed_from_u64(config.seed ^ 0xCA11B);
    let mean_ia = match config.arrival {
        ArrivalTarget::JobsPerHour(rate) => {
            assert!(rate > 0.0, "rate must be positive");
            3600.0 / rate
        }
        ArrivalTarget::Load(load) => {
            assert!(load > 0.0, "load must be positive");
            let mean_ms = sampler.mean_machine_seconds(&mut calib_rng, 4000);
            mean_ms / (load * config.cluster_nodes as f64)
        }
    };
    let arrivals = HyperExp::new(mean_ia, config.arrival_cov2);

    let mut next_id = 1u64;
    // Pre-training history: nominal one-per-second submissions in the past.
    let mut pretrain = Vec::with_capacity(config.pretrain_jobs);
    for i in 0..config.pretrain_jobs {
        let body = sampler.sample(&mut rng);
        let job = JobSpec::new(
            next_id,
            i as f64,
            body.tasks,
            body.duration,
            JobKind::BestEffort,
        )
        .with_attributes(body.attributes);
        pretrain.push(job);
        next_id += 1;
    }

    let preferred_count = ((config.num_partitions as f64 * config.preferred_fraction).round()
        as usize)
        .clamp(1, config.num_partitions);

    let mut jobs = Vec::new();
    let mut t = 0.0;
    loop {
        t += arrivals.sample(&mut rng);
        if t > config.duration {
            break;
        }
        let body = sampler.sample(&mut rng);
        let is_slo = rng.random::<f64>() < config.slo_fraction;
        let kind = if is_slo {
            let slack = config.deadline_slacks
                [(rng.random::<u64>() as usize) % config.deadline_slacks.len()];
            JobKind::Slo {
                deadline: t + body.duration * (1.0 + slack),
            }
        } else {
            JobKind::BestEffort
        };
        let mut job = JobSpec::new(next_id, t, body.tasks, body.duration, kind)
            .with_attributes(body.attributes);
        next_id += 1;
        if is_slo {
            // Preferred partitions: a random contiguous rotation covering
            // `preferred_fraction` of the racks.
            let start = (rng.random::<u64>() as usize) % config.num_partitions;
            let preferred: Vec<PartitionId> = (0..preferred_count)
                .map(|k| PartitionId((start + k) % config.num_partitions))
                .collect();
            job = job
                .with_preference(preferred, config.nonpreferred_slowdown)
                .with_weight(config.slo_weight);
        }
        jobs.push(job);
    }

    Trace { pretrain, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            duration: 1800.0,
            pretrain_jobs: 200,
            ..WorkloadConfig::e2e(Environment::Google, 7)
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.pretrain, b.pretrain);
        assert!(!a.jobs.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let b = generate(&WorkloadConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a.jobs, b.jobs);
    }

    #[test]
    fn offered_load_is_near_target() {
        let config = WorkloadConfig {
            duration: 4.0 * 3600.0,
            ..WorkloadConfig::e2e(Environment::Google, 11)
        };
        let trace = generate(&config);
        let load = trace.offered_load(config.cluster_nodes, config.duration);
        // Heavy-tailed job sizes make per-trace load noisy; a generous band
        // still catches calibration bugs (which are order-of-magnitude).
        assert!((0.6..=2.6).contains(&load), "load {load}");
    }

    #[test]
    fn jobs_respect_structural_invariants() {
        let config = small_config();
        let trace = generate(&config);
        let mut prev = 0.0;
        for j in &trace.jobs {
            assert!(j.submit_time >= prev, "arrivals sorted");
            prev = j.submit_time;
            assert!(j.tasks >= 1 && j.tasks <= config.cluster_nodes);
            assert!(j.duration >= 1.0);
            assert!(j.attributes.get("user").is_some());
            assert!(j.attributes.get("job_name").is_some());
            if let JobKind::Slo { deadline } = j.kind {
                let slack = j.deadline_slack().unwrap();
                assert!(
                    config
                        .deadline_slacks
                        .iter()
                        .any(|s| (s - slack).abs() < 1e-9),
                    "slack {slack} from the configured set"
                );
                assert!(deadline > j.submit_time);
                let pref = j.preferred.as_ref().expect("SLO jobs have preference");
                assert_eq!(pref.len(), 6, "75% of 8 racks");
                assert_eq!(j.nonpreferred_slowdown, 1.5);
                assert_eq!(j.utility_weight, config.slo_weight);
            } else {
                assert!(j.preferred.is_none());
                assert_eq!(j.utility_weight, 1.0);
            }
        }
    }

    #[test]
    fn slo_fraction_is_respected() {
        let config = WorkloadConfig {
            duration: 4.0 * 3600.0,
            ..WorkloadConfig::e2e(Environment::Google, 13)
        };
        let trace = generate(&config);
        let slo = trace.jobs.iter().filter(|j| j.kind.is_slo()).count();
        let frac = slo as f64 / trace.jobs.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "SLO fraction {frac}");
    }

    #[test]
    fn jobs_per_hour_target() {
        let config = WorkloadConfig {
            arrival: ArrivalTarget::JobsPerHour(600.0),
            duration: 3600.0 * 3.0,
            pretrain_jobs: 0,
            ..WorkloadConfig::e2e(Environment::Google, 17)
        };
        let trace = generate(&config);
        let rate = trace.jobs.len() as f64 / 3.0;
        assert!((rate - 600.0).abs() < 120.0, "rate {rate}/h");
    }

    #[test]
    fn pretrain_shares_feature_pools_with_run() {
        let trace = generate(&WorkloadConfig {
            pretrain_jobs: 2000,
            ..small_config()
        });
        let users: std::collections::HashSet<_> = trace
            .pretrain
            .iter()
            .filter_map(|j| j.attributes.get("user").map(str::to_owned))
            .collect();
        let overlap = trace
            .jobs
            .iter()
            .filter(|j| users.contains(j.attributes.get("user").unwrap()))
            .count();
        assert!(
            overlap as f64 / trace.jobs.len() as f64 > 0.8,
            "most run-phase users have history"
        );
    }

    #[test]
    fn trace_json_roundtrip() {
        let trace = generate(&WorkloadConfig {
            duration: 300.0,
            pretrain_jobs: 20,
            ..small_config()
        });
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.jobs, trace.jobs);
        assert_eq!(back.pretrain, trace.pretrain);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn trace_file_roundtrip() {
        let trace = generate(&WorkloadConfig {
            duration: 120.0,
            pretrain_jobs: 5,
            ..small_config()
        });
        let path = std::env::temp_dir().join("threesigma_trace_roundtrip.json");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.jobs, trace.jobs);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn runtime_distribution_is_heavy_tailed() {
        let config = WorkloadConfig {
            duration: 6.0 * 3600.0,
            ..WorkloadConfig::e2e(Environment::Mustang, 23)
        };
        let trace = generate(&config);
        let mut rts: Vec<f64> = trace.jobs.iter().map(|j| j.duration).collect();
        rts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rts[rts.len() / 2];
        let p99 = rts[(rts.len() as f64 * 0.99) as usize];
        assert!(p99 / median > 5.0, "p99/median = {}", p99 / median);
    }
}
