//! Seeded sampling helpers used by the trace generator.
//!
//! Keeps the dependency surface to `rand` (no `rand_distr`): normals via
//! Box–Muller, log-normals on top, weighted choice, and a two-phase
//! hyperexponential for the paper's bursty arrival process (`c_a² = 4`, §5).

use rand::rngs::StdRng;
use rand::RngExt;

/// Standard normal sample (Box–Muller).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample `exp(N(mu, sigma))`.
pub fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Exponential sample with the given mean.
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Index drawn from `weights` proportionally.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Balanced two-phase hyperexponential inter-arrival sampler.
///
/// Produces inter-arrival times with mean `mean` and squared coefficient of
/// variation `cov2 ≥ 1` (the paper uses `c_a² = 4`): a probabilistic mixture
/// of a fast and a slow exponential with balanced loads
/// (`p₁/λ₁ = p₂/λ₂`).
#[derive(Debug, Clone, Copy)]
pub struct HyperExp {
    p1: f64,
    mean1: f64,
    mean2: f64,
}

impl HyperExp {
    /// Creates a sampler with the given mean and squared CoV.
    ///
    /// # Panics
    ///
    /// Panics if `mean ≤ 0` or `cov2 < 1` (a hyperexponential cannot be
    /// less variable than an exponential).
    pub fn new(mean: f64, cov2: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cov2 >= 1.0, "hyperexponential needs cov² ≥ 1");
        if cov2 == 1.0 {
            return Self {
                p1: 1.0,
                mean1: mean,
                mean2: mean,
            };
        }
        // Balanced means: p1 = (1 + sqrt((c²−1)/(c²+1))) / 2, and phase
        // means m_i = mean / (2 p_i).
        let r = ((cov2 - 1.0) / (cov2 + 1.0)).sqrt();
        let p1 = 0.5 * (1.0 + r);
        let p2 = 1.0 - p1;
        Self {
            p1,
            mean1: mean / (2.0 * p1),
            mean2: mean / (2.0 * p2),
        }
    }

    /// Draws one inter-arrival time.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        if rng.random::<f64>() < self.p1 {
            exponential(rng, self.mean1)
        } else {
            exponential(rng, self.mean2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| lognormal(&mut r, 3.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / 3.0f64.exp() - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut r, 7.0)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 7.0).abs() < 0.2);
        // Exponential: var = mean².
        assert!((var / 49.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut r, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn empty_weights_panic() {
        let mut r = rng();
        let _ = weighted_choice(&mut r, &[]);
    }

    #[test]
    fn hyperexp_matches_target_mean_and_cov() {
        let mut r = rng();
        let h = HyperExp::new(10.0, 4.0);
        let samples: Vec<f64> = (0..200_000).map(|_| h.sample(&mut r)).collect();
        let (mean, var) = moments(&samples);
        let cov2 = var / (mean * mean);
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        assert!((cov2 - 4.0).abs() < 0.4, "cov² {cov2}");
    }

    #[test]
    fn hyperexp_with_cov_one_is_exponential() {
        let mut r = rng();
        let h = HyperExp::new(5.0, 1.0);
        let samples: Vec<f64> = (0..50_000).map(|_| h.sample(&mut r)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.2);
        assert!((var / 25.0 - 1.0).abs() < 0.1);
    }
}
