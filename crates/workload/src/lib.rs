//! Synthetic trace generation and trace analysis for the 3Sigma evaluation.
//!
//! The paper's E2E workloads are themselves synthetic: jobs are clustered
//! from the original traces (Google 2011, a hedge-fund's two Mesos clusters,
//! LANL's Mustang) and regenerated from per-class parameter distributions
//! with an exponential arrival process of squared arrival CoV 4 (§5). We do
//! not have the raw traces, so the [`env`] module encodes per-environment
//! *job-class mixtures* tuned to match the published summary statistics —
//! the heavy-tailed runtime CDFs, per-feature CoV spreads, and
//! JVuPredict-style estimate-error profiles of Fig. 2 — and [`generator`]
//! regenerates traces from them exactly as the paper's GridMix-based
//! generator does.
//!
//! [`analysis`] computes the Fig. 2 statistics from any generated trace so
//! the bench harness can verify the match.

pub mod analysis;
pub mod env;
pub mod generator;
pub mod sampling;

pub use env::{Environment, JobClass};
pub use generator::{generate, ArrivalTarget, Trace, WorkloadConfig};
