//! Fig. 9 — robustness to runtime-distribution perturbation.
//!
//! Feeds the scheduler synthetic per-job distributions
//! `N(µ = runtime·(1 + shift_j), σ = runtime·CoV)` with per-job shift
//! `shift_j ~ N(shift, 0.1)`, sweeping the centre shift and the width
//! (CoV ∈ {point, 10 %, 20 %, 50 %}) on the 2-hour E2E workload.
//!
//! Expected shape (paper §6.3): distributions always beat the point
//! estimate; narrow distributions win near zero shift; wide distributions
//! win at large |shift| (they hedge the risk). Also prints the Fig. 9(c)
//! shift profile.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use threesigma::driver::{run_with_source, Experiment, SchedulerKind};
use threesigma::sched::threesigma::{EstimateSource, OverestimateMode};
use threesigma_bench::{banner, e2e_config, run_system, sc256, write_json, Scale};
use threesigma_histogram::{Normal, PointMass, RuntimeDistribution};
use threesigma_workload::{generate, Environment, Trace};

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builds the injected distribution map; returns it plus the Fig. 9(c)
/// shift-profile fractions (≤ −10 %, within ±10 %, ≥ +10 %).
fn injected_map(
    trace: &Trace,
    shift: f64,
    cov: Option<f64>,
    seed: u64,
) -> (EstimateSource, [f64; 3]) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = HashMap::new();
    let mut profile = [0usize; 3];
    for job in &trace.jobs {
        let shift_j = shift + 0.1 * standard_normal(&mut rng);
        if shift_j <= -0.1 {
            profile[0] += 1;
        } else if shift_j < 0.1 {
            profile[1] += 1;
        } else {
            profile[2] += 1;
        }
        let mu = (job.duration * (1.0 + shift_j)).max(1.0);
        let dist = match cov {
            None => RuntimeDistribution::Point(PointMass::new(mu)),
            Some(c) => RuntimeDistribution::Normal(Normal::new(mu, (job.duration * c).max(0.1))),
        };
        map.insert(job.id, dist);
    }
    let n = trace.jobs.len().max(1) as f64;
    (
        EstimateSource::Injected(std::sync::Arc::new(map)),
        [
            profile[0] as f64 / n,
            profile[1] as f64 / n,
            profile[2] as f64 / n,
        ],
    )
}

#[derive(Serialize)]
struct Point9 {
    shift_pct: f64,
    cov_label: String,
    slo_miss_pct: f64,
    slo_goodput_mh: f64,
    shift_profile: [f64; 3],
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 9",
        "artificial distribution shift × width sweep",
        scale,
    );
    // The paper uses the 2-hour E2E variant for this study.
    let mut config = e2e_config(Environment::Google, scale, 42);
    config.duration = config.duration.min(2.0 * 3600.0);
    let trace = generate(&config);
    let exp: Experiment = sc256(scale);

    let shifts = [-0.5, -0.2, 0.0, 0.2, 0.5, 1.0];
    let covs: [(Option<f64>, &str); 4] = [
        (None, "point"),
        (Some(0.1), "CoV=10%"),
        (Some(0.2), "CoV=20%"),
        (Some(0.5), "CoV=50%"),
    ];

    let mut out = Vec::new();
    println!(
        "{:<8} {:<9} {:>10} {:>14} {:>26}",
        "shift", "width", "SLO miss%", "SLO gp(M-h)", "profile(under/ok/over)"
    );
    for &shift in &shifts {
        for (cov, label) in covs {
            let (source, profile) = injected_map(&trace, shift, cov, 7 + (shift * 100.0) as u64);
            let r = run_with_source(source, OverestimateMode::Adaptive, &trace, &exp)
                .expect("simulation runs");
            let m = &r.metrics;
            println!(
                "{:<8} {:<9} {:>10.1} {:>14.1} {:>8.2}/{:.2}/{:.2}",
                format!("{}%", shift * 100.0),
                label,
                m.slo_miss_pct(),
                m.slo_goodput_hours(),
                profile[0],
                profile[1],
                profile[2]
            );
            out.push(Point9 {
                shift_pct: shift * 100.0,
                cov_label: label.to_owned(),
                slo_miss_pct: m.slo_miss_pct(),
                slo_goodput_mh: m.slo_goodput_hours(),
                shift_profile: profile,
            });
        }
        println!();
    }

    // Reference row: the oracle point scheduler on the same trace.
    let oracle = run_system(SchedulerKind::PointPerfEst, &trace, &exp);
    println!(
        "reference PointPerfEst: SLO miss {:.1} %, SLO goodput {:.1} M-h",
        oracle.metrics.slo_miss_pct(),
        oracle.metrics.slo_goodput_hours()
    );
    write_json("fig09_perturb", &out);
}
