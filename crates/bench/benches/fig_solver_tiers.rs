//! Per-tier solve latency on a representative scheduling-cycle MILP
//! (64 jobs × 12 placement options, demand SOS1 groups, 8 set × 8 slot
//! capacity rows — the same shape as `micro_latency`'s `cycle_solve_64jobs`).
//!
//! Arms:
//! * `tier0_greedy_rounding` — LP relaxation + greedy rounding, no search;
//! * `tier1_lp_repair`       — LP relaxation + repair, root node only;
//! * `tier2_cold`            — full branch-and-bound from scratch;
//! * `tier2_incremental_reuse` — the incremental wrapper replaying an
//!   identical model, i.e. the steady-state cycle-N vs cycle-N−1 path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use threesigma_milp::{solver_for_tier, Cmp, IncrementalSolver, Model, Solver, SolverConfig};

/// A representative scheduling-cycle MILP: 64 jobs × 12 options, demand
/// rows, and 8 set × 8 slot capacity rows.
fn cycle_model() -> Model {
    let mut m = Model::new();
    let mut all = Vec::new();
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..64 {
        let mut vars = Vec::new();
        for o in 0..12 {
            let u = 10.0 * next() / (1.0 + o as f64 * 0.3);
            vars.push(m.add_binary(u));
        }
        let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
        m.add_constraint(&terms, Cmp::Le, 1.0);
        m.add_sos1(&vars);
        all.push(vars);
    }
    for _set in 0..8 {
        for _slot in 0..8 {
            let mut terms = Vec::new();
            for vars in &all {
                for v in vars {
                    let coeff = 8.0 * next();
                    if coeff > 2.0 {
                        terms.push((*v, coeff));
                    }
                }
            }
            m.add_constraint(&terms, Cmp::Le, 192.0);
        }
    }
    m
}

fn config() -> SolverConfig {
    SolverConfig {
        node_limit: 200,
        time_limit: Some(Duration::from_millis(100)),
        ..SolverConfig::default()
    }
}

/// Config for the incremental arm: node budget only. A wall-clock limit
/// would mark the priming solve `timed_out` — a machine-dependent terminal
/// state the cache refuses to replay — so the steady-state path is gated on
/// the deterministic node budget instead (same rationale as the solver
/// oracle's fixture config).
fn untimed_config() -> SolverConfig {
    SolverConfig {
        node_limit: 200,
        time_limit: None,
        ..SolverConfig::default()
    }
}

fn bench_tiers(c: &mut Criterion) {
    let model = cycle_model();
    let warm = vec![0.0; model.num_vars()];
    let mut group = c.benchmark_group("solver_tiers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for (label, tier) in [
        ("tier0_greedy_rounding", 0u8),
        ("tier1_lp_repair", 1),
        ("tier2_cold", 2),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut solver = solver_for_tier(tier, config());
                black_box(solver.solve_with_warm_start(&model, Some(&warm)))
            })
        });
    }

    // Steady state: the incremental wrapper has already solved this exact
    // model once, so every iteration exercises the diff + cache-hit path.
    let mut inc = IncrementalSolver::with_config(untimed_config());
    let first = inc.solve_with_warm_start(&model, Some(&warm));
    black_box(&first);
    let second = inc.solve_with_warm_start(&model, Some(&warm));
    black_box(&second);
    assert!(
        inc.stats().reuses >= 1,
        "priming solve did not arm the cache (status {:?}, timed_out {}) — \
         the reuse arm would silently measure full re-solves",
        first.status,
        first.timed_out,
    );
    group.bench_function("tier2_incremental_reuse", |b| {
        b.iter(|| black_box(inc.solve_with_warm_start(&model, Some(&warm))))
    });
    group.finish();
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
