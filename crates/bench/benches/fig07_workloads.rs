//! Fig. 7 (and Fig. 1) — the four headline systems across the three
//! workload environments on the simulated 256-node cluster.
//!
//! Fig. 1 is the Google column of this experiment. Expected shape per the
//! paper: 3Sigma outperforms PointRealEst and Prio on SLO miss rate and
//! goodput in every environment while approximately matching (for
//! HedgeFund/Mustang occasionally beating) PointPerfEst.

use serde::Serialize;
use threesigma::driver::SchedulerKind;
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, sc256, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rows: Vec<MetricRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 7 (incl. Fig. 1)",
        "headline systems across Google / HedgeFund / Mustang workloads",
        scale,
    );
    let mut rows = Vec::new();
    print_header("workload");
    for env in [
        Environment::Google,
        Environment::HedgeFund,
        Environment::Mustang,
    ] {
        let config = e2e_config(env, scale, 42);
        let trace = generate(&config);
        // Measurement window scales with the trace: Mustang's multi-hour
        // gangs need a proportionally longer completion window or every
        // scheduler shares a large end-effect miss floor.
        let mut exp = sc256(scale);
        exp.engine.drain = Some((0.45 * config.duration).max(1800.0));
        for kind in SchedulerKind::headline() {
            let r = run_system(kind, &trace, &exp);
            let row = MetricRow::new(kind.name(), env.name(), &r);
            print_row(&row);
            rows.push(row);
        }
        println!();
    }
    println!(
        "(Fig. 1 = the Google rows' SLO-miss column; paper shape: 3Sigma ≈\n\
         PointPerfEst ≪ Prio < PointRealEst on SLO miss)"
    );
    write_json("fig07_workloads", &Output { rows });
}
