//! Fig. 6 + Table 2 — end-to-end comparison on the "real" cluster.
//!
//! Runs the four headline systems on the 2-hour Google E2E workload against
//! the RC256 cluster (the simulator with real-cluster fidelity noise:
//! runtime jitter + placement latency) and against the clean SC256
//! simulator, then prints both the Fig. 6 bars (SLO miss, goodput split,
//! BE latency) and Table 2's RC-vs-SC absolute deltas.
//!
//! Expected shape: 3Sigma ≈ PointPerfEst on SLO miss and well below
//! PointRealEst and Prio; Prio sacrifices BE goodput/latency; the RC/SC
//! deltas stay small.

use serde::Serialize;
use threesigma::driver::{Experiment, SchedulerKind};
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rc: Vec<MetricRow>,
    sc: Vec<MetricRow>,
    table2_deltas: Vec<(String, f64, f64, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 6 / Table 2",
        "E2E on the real-fidelity cluster (RC256) vs simulation (SC256)",
        scale,
    );
    // The paper uses the 2-hour E2E variant on RC256 to bound experiment
    // time; we do the same at both scales.
    let mut config = e2e_config(Environment::Google, scale, 42);
    config.duration = config.duration.min(2.0 * 3600.0);
    let trace = generate(&config);
    println!(
        "workload: {} jobs, offered load {:.2}\n",
        trace.jobs.len(),
        trace.offered_load(256, config.duration)
    );

    let mut rc_rows = Vec::new();
    let mut sc_rows = Vec::new();
    for (cluster_name, rows) in [("RC256", &mut rc_rows), ("SC256", &mut sc_rows)] {
        let exp = match cluster_name {
            "RC256" => Experiment {
                cluster: Experiment::paper_rc256().cluster,
                ..threesigma_bench::sc256(scale)
            },
            _ => threesigma_bench::sc256(scale),
        };
        println!("--- {cluster_name} ---");
        print_header("cluster");
        for kind in SchedulerKind::headline() {
            let r = run_system(kind, &trace, &exp);
            let row = MetricRow::new(kind.name(), cluster_name, &r);
            print_row(&row);
            rows.push(row);
        }
        println!();
    }

    // Table 2: absolute differences between real and simulated runs.
    println!("--- Table 2: |RC − SC| per system ---");
    println!(
        "{:<14} {:>14} {:>16} {:>16}",
        "system", "Δ SLO miss(%)", "Δ goodput(M-h)", "Δ BE latency(s)"
    );
    let mut deltas = Vec::new();
    for (rc, sc) in rc_rows.iter().zip(&sc_rows) {
        let d_miss = (rc.slo_miss_pct - sc.slo_miss_pct).abs();
        let d_gp = (rc.goodput_mh - sc.goodput_mh).abs();
        let d_lat = (rc.be_latency_s - sc.be_latency_s).abs();
        println!(
            "{:<14} {:>14.2} {:>16.2} {:>16.1}",
            rc.system, d_miss, d_gp, d_lat
        );
        deltas.push((rc.system.clone(), d_miss, d_gp, d_lat));
    }
    println!(
        "\n(paper Table 2: deltas of ≈0.3–2.0 % miss, ≈20–27 M-h goodput,\n\
         ≈2–12 s BE latency — i.e. small relative to the metric scales)"
    );

    write_json(
        "fig06_e2e_real",
        &Output {
            rc: rc_rows,
            sc: sc_rows,
            table2_deltas: deltas,
        },
    );
}
