//! Fig. 8 — attribution of benefit: ablations vs. deadline slack.
//!
//! Runs 3Sigma, its three ablations (NoDist / NoOE / NoAdapt), and the two
//! point baselines over the DEADLINE-n workloads (a single fixed deadline
//! slack per run, n ∈ {20..180} %), reporting SLO miss rate, SLO goodput,
//! and BE goodput.
//!
//! Expected shape (paper §6.2): every technique matters —
//! * 3SigmaNoDist beats PointRealEst (over-estimate handling alone helps),
//! * 3SigmaNoOE recovers most of the distance to PointPerfEst
//!   (distributions alone are the big win),
//! * 3SigmaNoAdapt over-tries hopeless jobs and pays in BE goodput,
//! * miss rates fall monotonically-ish as slack grows for all systems.

use serde::Serialize;
use threesigma::driver::SchedulerKind;
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, sc256, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rows: Vec<MetricRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 8",
        "ablations vs deadline slack (DEADLINE-n workloads)",
        scale,
    );
    let slacks: Vec<f64> = match scale {
        Scale::Quick => vec![0.2, 0.6, 1.0, 1.4, 1.8],
        Scale::Paper => vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8],
    };
    let systems = [
        SchedulerKind::PointRealEst,
        SchedulerKind::ThreeSigmaNoDist,
        SchedulerKind::ThreeSigmaNoOE,
        SchedulerKind::ThreeSigmaNoAdapt,
        SchedulerKind::ThreeSigma,
        SchedulerKind::PointPerfEst,
    ];
    let exp = sc256(scale);
    let mut rows = Vec::new();
    print_header("slack");
    for &slack in &slacks {
        let config = e2e_config(Environment::Google, scale, 42).with_slack(slack);
        let trace = generate(&config);
        for kind in systems {
            let r = run_system(kind, &trace, &exp);
            let row = MetricRow::new(kind.name(), &format!("{}%", (slack * 100.0) as u32), &r);
            print_row(&row);
            rows.push(row);
        }
        println!();
    }
    write_json("fig08_ablation", &Output { rows });
}
