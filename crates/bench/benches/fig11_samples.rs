//! Fig. 11 — sensitivity to the number of observed samples per feature
//! (E2E-SAMPLE-n workloads).
//!
//! Caps the predictor's visible history per feature value at n ∈
//! {5, 10, 25, 50(, 75, 100)} and compares 3Sigma with PointRealEst;
//! PointPerfEst and Prio do not use history and appear as flat references.
//!
//! Expected shape (paper §6.4): both history-driven systems improve
//! sharply from 5 to 25 samples; by 25 samples 3Sigma converges to
//! PointPerfEst; 3Sigma beats PointRealEst at every n.

use serde::Serialize;
use threesigma::driver::SchedulerKind;
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, sc256, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rows: Vec<MetricRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 11",
        "sensitivity to observed samples per feature",
        scale,
    );
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![5, 10, 25, 50],
        Scale::Paper => vec![5, 10, 25, 50, 75, 100],
    };
    let config = e2e_config(Environment::Google, scale, 42);
    let trace = generate(&config);
    let mut rows = Vec::new();
    print_header("samples");

    // History-free references, run once.
    let exp = sc256(scale);
    for kind in [SchedulerKind::PointPerfEst, SchedulerKind::Prio] {
        let r = run_system(kind, &trace, &exp);
        let row = MetricRow::new(kind.name(), "any", &r);
        print_row(&row);
        rows.push(row);
    }
    println!();

    for &n in &ns {
        let mut exp = sc256(scale);
        exp.predictor.sample_cap = Some(n);
        for kind in [SchedulerKind::ThreeSigma, SchedulerKind::PointRealEst] {
            let r = run_system(kind, &trace, &exp);
            let row = MetricRow::new(kind.name(), &n.to_string(), &r);
            print_row(&row);
            rows.push(row);
        }
        println!();
    }
    write_json("fig11_samples", &Output { rows });
}
