//! Design-choice ablations (beyond the paper's figures).
//!
//! DESIGN.md calls out several engineering choices that the paper leaves to
//! the implementation: the plan-ahead window size, the per-cycle pending-set
//! cap, the MILP solver budget, and whether preemption is enabled. This
//! harness quantifies each against the default configuration on the 3Sigma
//! system, and additionally measures the §2.2 "stochastic scheduler"
//! heuristic (point estimate + 1σ padding) as an extension baseline.

use std::time::Duration;

use serde::Serialize;
use threesigma::driver::SchedulerKind;
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, sc256, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rows: Vec<MetricRow>,
    mean_cycle_ms: Vec<(String, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Knob ablations",
        "plan-ahead window, pending cap, solver budget, preemption, σ-padding",
        scale,
    );
    let config = e2e_config(Environment::Google, scale, 42);
    let trace = generate(&config);
    let base = sc256(scale);

    let mut variants: Vec<(String, threesigma::driver::Experiment)> = Vec::new();
    variants.push(("default".into(), base.clone()));
    for slots in [2usize, 4, 16] {
        let mut e = base.clone();
        e.sched.plan_slots = slots;
        variants.push((format!("plan_slots={slots}"), e));
    }
    for cap in [16usize, 48, 192] {
        let mut e = base.clone();
        e.sched.max_jobs_per_cycle = cap;
        variants.push((format!("job_cap={cap}"), e));
    }
    {
        let mut e = base.clone();
        e.sched.preemption_enabled = false;
        variants.push(("no_preemption".into(), e));
    }
    for ms in [5u64, 1000] {
        let mut e = base.clone();
        e.sched.solver_time = Duration::from_millis(ms);
        variants.push((format!("solver_budget={ms}ms"), e));
    }
    for width in [30.0f64, 240.0] {
        let mut e = base.clone();
        e.sched.slot_width = width;
        variants.push((format!("slot_width={width}s"), e));
    }

    let mut rows = Vec::new();
    let mut cycle_ms = Vec::new();
    print_header("variant");
    for (label, exp) in &variants {
        let r = run_system(SchedulerKind::ThreeSigma, &trace, exp);
        let row = MetricRow::new("3Sigma", label, &r);
        print_row(&row);
        let mean = r
            .timings
            .iter()
            .map(|t| t.total.as_secs_f64() * 1e3)
            .sum::<f64>()
            / r.timings.len().max(1) as f64;
        cycle_ms.push((label.clone(), mean));
        rows.push(row);
    }

    println!("\n--- extension baselines vs the full distribution ---");
    for kind in [
        SchedulerKind::PointRealEst,
        SchedulerKind::PointPaddedEst,
        SchedulerKind::Backfill,
        SchedulerKind::ThreeSigma,
    ] {
        let r = run_system(kind, &trace, &base);
        let row = MetricRow::new(kind.name(), "baselines", &r);
        print_row(&row);
        rows.push(row);
    }
    println!(
        "\n(expected: padding improves on the raw point estimate but cannot\n\
         match the distribution scheduler — §2.2 'such heuristics help, but\n\
         do not eliminate the problem')"
    );
    println!("\nmean cycle latency per variant:");
    for (label, ms) in &cycle_ms {
        println!("  {label:<20} {ms:>7.2} ms");
    }
    write_json(
        "ablation_knobs",
        &Output {
            rows,
            mean_cycle_ms: cycle_ms,
        },
    );
}
