//! Fig. 10 — sensitivity to offered load (E2E-LOAD-ℓ workloads).
//!
//! Sweeps offered load ℓ ∈ {1.0, 1.2, 1.4, 1.6} for the four headline
//! systems. Expected shape: SLO miss rates grow with load for everyone;
//! 3Sigma tracks PointPerfEst closely; all systems sacrifice BE goodput as
//! load grows; the PointPerfEst–3Sigma BE-goodput gap widens with load.

use serde::Serialize;
use threesigma::driver::SchedulerKind;
use threesigma_bench::{
    banner, e2e_config, print_header, print_row, run_system, sc256, write_json, MetricRow, Scale,
};
use threesigma_workload::{generate, Environment};

#[derive(Serialize)]
struct Output {
    rows: Vec<MetricRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 10", "sensitivity to offered load (E2E-LOAD-l)", scale);
    let exp = sc256(scale);
    let mut rows = Vec::new();
    print_header("load");
    for load in [1.0, 1.2, 1.4, 1.6] {
        let config = e2e_config(Environment::Google, scale, 42).with_load(load);
        let trace = generate(&config);
        for kind in SchedulerKind::headline() {
            let r = run_system(kind, &trace, &exp);
            let row = MetricRow::new(kind.name(), &format!("{load:.1}"), &r);
            print_row(&row);
            rows.push(row);
        }
        println!();
    }
    write_json("fig10_load", &Output { rows });
}
