//! Fig. 12 — scalability at Google scale (12,583 nodes).
//!
//! Runs the SCALABILITY-n workloads (n ∈ {2000, 3000, 4000} jobs/hour,
//! offered load 0.95) on a simulated 12,584-node cluster and reports the
//! distribution of (a) whole scheduling-cycle runtime and (b) solver
//! runtime, for distribution-based (3Sigma) vs point-based (PointRealEst)
//! scheduling, plus the 3σPredict lookup latency.
//!
//! Expected shape (paper §6.5): both fit comfortably within the cycle;
//! distribution-based scheduling adds a moderate constant factor
//! (more constraint terms, same number of decision variables), and
//! predictor latency is negligible (≤ ~14 ms in the paper).

use std::time::Instant;

use serde::Serialize;
use threesigma::driver::{Experiment, SchedulerKind};
use threesigma::CycleTiming;
use threesigma_bench::{banner, run_system, write_json, Scale};
use threesigma_cluster::ClusterSpec;
use threesigma_predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_workload::{generate, ArrivalTarget, Environment, Trace, WorkloadConfig};

struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

const NODES: u32 = 12_584; // 8 racks × 1573 ≈ the trace's 12,583 machines
const RACKS: usize = 8;

/// Rescales gang sizes so the offered load hits the target (the paper sets
/// load 0.95 independently of the submission rate).
fn rescale_load(trace: &mut Trace, duration: f64, target: f64) {
    let work: f64 = trace.jobs.iter().map(|j| j.tasks as f64 * j.duration).sum();
    let factor = target * NODES as f64 * duration / work;
    for j in &mut trace.jobs {
        let t = (j.tasks as f64 * factor).round() as u32;
        j.tasks = t.clamp(1, NODES);
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

#[derive(Serialize)]
struct Row {
    jobs_per_hour: f64,
    system: String,
    shards: usize,
    cycle_mean_ms: f64,
    cycle_p95_ms: f64,
    cycle_max_ms: f64,
    solver_mean_ms: f64,
    solver_p95_ms: f64,
    solver_max_ms: f64,
    // Per-stage breakdown of the cycle (means): option generation, MILP
    // compilation, and solution extraction; the solver is above.
    generate_mean_ms: f64,
    compile_mean_ms: f64,
    extract_mean_ms: f64,
    cycles: usize,
}

fn stats(timings: &[CycleTiming]) -> (Vec<f64>, Vec<f64>) {
    let mut cyc: Vec<f64> = timings
        .iter()
        .map(|t| t.total.as_secs_f64() * 1e3)
        .collect();
    let mut sol: Vec<f64> = timings
        .iter()
        .map(|t| t.solver.as_secs_f64() * 1e3)
        .collect();
    cyc.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sol.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (cyc, sol)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 12",
        "scheduler scalability at 12,584 nodes (SCALABILITY-n)",
        scale,
    );
    let duration = match scale {
        Scale::Quick => 0.4 * 3600.0,
        Scale::Paper => 5.0 * 3600.0,
    };
    let cycle = match scale {
        Scale::Quick => 5.0,
        Scale::Paper => 2.0,
    };

    // 3σPredict lookup latency at job-submission time (§6.5 reports a
    // 14 ms maximum).
    let hist_config = WorkloadConfig {
        duration: 60.0,
        pretrain_jobs: 20_000,
        ..WorkloadConfig::e2e(Environment::Google, 5)
    };
    let hist = generate(&hist_config);
    let mut predictor = Predictor::new(PredictorConfig::default());
    for j in &hist.pretrain {
        predictor.observe(&Attrs(&j.attributes), j.duration);
    }
    let mut max_us = 0.0f64;
    let mut total_us = 0.0f64;
    for j in hist.pretrain.iter().take(5000) {
        let t0 = Instant::now();
        let _ = predictor.predict(&Attrs(&j.attributes));
        let us = t0.elapsed().as_secs_f64() * 1e6;
        max_us = max_us.max(us);
        total_us += us;
    }
    println!(
        "3σPredict lookup over {} tracked feature values: mean {:.0} µs, max {:.0} µs\n",
        predictor.tracked_values(),
        total_us / 5000.0,
        max_us
    );

    let mut rows = Vec::new();
    println!(
        "{:<8} {:<14} {:>22} {:>22}",
        "jobs/h", "system", "cycle mean/p95/max ms", "solver mean/p95/max ms"
    );
    for rate in [2000.0, 3000.0, 4000.0] {
        let mut config = WorkloadConfig {
            cluster_nodes: NODES,
            num_partitions: RACKS,
            duration,
            arrival: ArrivalTarget::JobsPerHour(rate),
            pretrain_jobs: 6000,
            ..WorkloadConfig::e2e(Environment::Google, 31)
        };
        config.seed = 31 + rate as u64;
        let mut trace = generate(&config);
        rescale_load(&mut trace, duration, 0.95);

        for (kind, label) in [
            (SchedulerKind::ThreeSigma, "Dist"),
            (SchedulerKind::PointRealEst, "Point"),
        ] {
            let exp = Experiment {
                cluster: ClusterSpec::uniform(RACKS, NODES / RACKS as u32),
                ..Experiment::paper_sc256().with_cycle(cycle)
            };
            let r = run_system(kind, &trace, &exp);
            let (cyc, sol) = stats(&r.timings);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let stage_mean = |f: &dyn Fn(&CycleTiming) -> f64| {
                let v: Vec<f64> = r.timings.iter().map(f).collect();
                mean(&v)
            };
            let gen_ms = stage_mean(&|t| t.generate.as_secs_f64() * 1e3);
            let com_ms = stage_mean(&|t| t.compile.as_secs_f64() * 1e3);
            let ext_ms = stage_mean(&|t| t.extract.as_secs_f64() * 1e3);
            println!(
                "{:<8} {:<14} {:>7.1}/{:>5.1}/{:>6.1} {:>9.1}/{:>5.1}/{:>6.1}   \
                 (gen {:.1} + compile {:.1} + extract {:.1} ms)",
                rate,
                label,
                mean(&cyc),
                percentile(&cyc, 0.95),
                cyc.last().copied().unwrap_or(0.0),
                mean(&sol),
                percentile(&sol, 0.95),
                sol.last().copied().unwrap_or(0.0),
                gen_ms,
                com_ms,
                ext_ms,
            );
            rows.push(Row {
                jobs_per_hour: rate,
                system: label.to_owned(),
                shards: 1,
                cycle_mean_ms: mean(&cyc),
                cycle_p95_ms: percentile(&cyc, 0.95),
                cycle_max_ms: cyc.last().copied().unwrap_or(0.0),
                solver_mean_ms: mean(&sol),
                solver_p95_ms: percentile(&sol, 0.95),
                solver_max_ms: sol.last().copied().unwrap_or(0.0),
                generate_mean_ms: gen_ms,
                compile_mean_ms: com_ms,
                extract_mean_ms: ext_ms,
                cycles: cyc.len(),
            });
        }
    }
    // Shard sweep: the same ≥1k-job SCALABILITY-3000 workload (0.4 h ×
    // 3000/h = 1200 jobs at Quick scale) at worker shard counts {1, 2, 8}.
    // Decisions are byte-identical across shard counts, so only the
    // per-cycle latency distribution moves.
    println!("\nshard sweep (Dist @ 3000 jobs/h, identical decisions per shard count):");
    let rate = 3000.0;
    let mut config = WorkloadConfig {
        cluster_nodes: NODES,
        num_partitions: RACKS,
        duration,
        arrival: ArrivalTarget::JobsPerHour(rate),
        pretrain_jobs: 6000,
        ..WorkloadConfig::e2e(Environment::Google, 31)
    };
    config.seed = 31 + rate as u64;
    let mut trace = generate(&config);
    rescale_load(&mut trace, duration, 0.95);
    println!("  trace: {} jobs", trace.jobs.len());
    for shards in [1usize, 2, 8] {
        let mut exp = Experiment {
            cluster: ClusterSpec::uniform(RACKS, NODES / RACKS as u32),
            ..Experiment::paper_sc256().with_cycle(cycle)
        };
        exp.sched.shards = shards;
        let r = run_system(SchedulerKind::ThreeSigma, &trace, &exp);
        let (cyc, sol) = stats(&r.timings);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let gen_ms = {
            let v: Vec<f64> = r
                .timings
                .iter()
                .map(|t| t.generate.as_secs_f64() * 1e3)
                .collect();
            mean(&v)
        };
        let com_ms = {
            let v: Vec<f64> = r
                .timings
                .iter()
                .map(|t| t.compile.as_secs_f64() * 1e3)
                .collect();
            mean(&v)
        };
        let ext_ms = {
            let v: Vec<f64> = r
                .timings
                .iter()
                .map(|t| t.extract.as_secs_f64() * 1e3)
                .collect();
            mean(&v)
        };
        let label = format!("Dist/shards={shards}");
        println!(
            "{:<8} {:<14} {:>7.1}/{:>5.1}/{:>6.1} {:>9.1}/{:>5.1}/{:>6.1}   \
             (gen {:.1} + compile {:.1} + extract {:.1} ms)",
            rate,
            label,
            mean(&cyc),
            percentile(&cyc, 0.95),
            cyc.last().copied().unwrap_or(0.0),
            mean(&sol),
            percentile(&sol, 0.95),
            sol.last().copied().unwrap_or(0.0),
            gen_ms,
            com_ms,
            ext_ms,
        );
        rows.push(Row {
            jobs_per_hour: rate,
            system: label,
            shards,
            cycle_mean_ms: mean(&cyc),
            cycle_p95_ms: percentile(&cyc, 0.95),
            cycle_max_ms: cyc.last().copied().unwrap_or(0.0),
            solver_mean_ms: mean(&sol),
            solver_p95_ms: percentile(&sol, 0.95),
            solver_max_ms: sol.last().copied().unwrap_or(0.0),
            generate_mean_ms: gen_ms,
            compile_mean_ms: com_ms,
            extract_mean_ms: ext_ms,
            cycles: cyc.len(),
        });
    }
    println!(
        "\n(paper Fig. 12: both systems stay within single-digit seconds per\n\
         cycle; Dist adds a moderate constant factor over Point)"
    );
    write_json("fig12_scalability", &rows);
}
