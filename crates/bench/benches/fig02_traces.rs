//! Fig. 2 — analyses of the three cluster workloads.
//!
//! (a) runtime CDFs, (b) CoV per user-id group, (c) CoV per
//! resources-requested group, (d) JVuPredict estimate-error histogram.
//! Reproduces the published summary shapes: heavy-tailed runtimes in all
//! environments; large high-variability fractions (more in HedgeFund and
//! Mustang than Google); 8–23 % of estimates off by ≥2×, with Mustang
//! combining a large very-accurate mass with a fat positive tail.

use serde::Serialize;
use threesigma_bench::{banner, write_json, Scale};
use threesigma_predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_workload::analysis::{
    cov_by_attribute, error_histogram, estimate_error_pct, fraction_off_by_factor,
    high_variability_fraction, runtime_cdf,
};
use threesigma_workload::{generate, Environment, WorkloadConfig};

struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

#[derive(Serialize)]
struct EnvStats {
    env: String,
    jobs: usize,
    runtime_percentiles: Vec<(String, f64)>,
    cov_user_frac_gt1: f64,
    cov_resources_frac_gt1: f64,
    error_buckets: Vec<(f64, f64)>,
    error_tail_pct: f64,
    off_by_2x_pct: f64,
    within_5pct: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 2",
        "trace analyses (runtime CDF, CoV, estimate error)",
        scale,
    );
    let samples = match scale {
        Scale::Quick => 6000,
        Scale::Paper => 30000,
    };

    let mut all = Vec::new();
    for env in [
        Environment::Google,
        Environment::HedgeFund,
        Environment::Mustang,
    ] {
        // Arrival times are irrelevant here; use the (untimed) history
        // stream as the analysed job population.
        let config = WorkloadConfig {
            duration: 60.0,
            pretrain_jobs: samples,
            ..WorkloadConfig::e2e(env, 2024)
        };
        let trace = generate(&config);
        let jobs = &trace.pretrain;

        // (a) runtime CDF percentiles.
        let cdf = runtime_cdf(jobs);
        let at = |q: f64| cdf[(q * (cdf.len() - 1) as f64) as usize].0;
        let percentiles: Vec<(String, f64)> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| (format!("p{}", (q * 100.0) as u32), at(q)))
            .collect();

        // (b)/(c) CoV by user and by resources requested.
        let cov_user = cov_by_attribute(jobs, "user", 5);
        let cov_res = cov_by_attribute(jobs, "tasks", 5);
        let user_gt1 = high_variability_fraction(&cov_user, 1.0);
        let res_gt1 = high_variability_fraction(&cov_res, 1.0);

        // (d) prequential JVuPredict error profile.
        let split = jobs.len() * 2 / 5;
        let mut predictor = Predictor::new(PredictorConfig::default());
        for job in &jobs[..split] {
            predictor.observe(&Attrs(&job.attributes), job.duration);
        }
        let mut errors = Vec::new();
        let mut pairs = Vec::new();
        for job in &jobs[split..] {
            if let Some(p) = predictor.predict_point(&Attrs(&job.attributes)) {
                errors.push(estimate_error_pct(p, job.duration));
                pairs.push((p, job.duration));
            }
            predictor.observe(&Attrs(&job.attributes), job.duration);
        }
        let hist = error_histogram(&errors);
        let within5 = pairs
            .iter()
            .filter(|(e, a)| ((e - a) / a).abs() <= 0.05)
            .count() as f64
            / pairs.len().max(1) as f64;

        println!("\n=== {} ({} jobs analysed) ===", env.name(), jobs.len());
        println!("(a) runtime percentiles (s):");
        for (name, v) in &percentiles {
            println!("    {name:<4} {v:>10.0}");
        }
        println!(
            "(b) user groups with CoV > 1     : {:>5.1} %",
            user_gt1 * 100.0
        );
        println!(
            "(c) resource groups with CoV > 1 : {:>5.1} %",
            res_gt1 * 100.0
        );
        println!("(d) estimate-error histogram (% of jobs):");
        for (c, pct) in &hist.buckets {
            println!(
                "    {c:>5}%  {pct:>5.1}  {}",
                "#".repeat(pct.round() as usize)
            );
        }
        println!(
            "     tail  {:>5.1}  {}",
            hist.tail_pct,
            "#".repeat(hist.tail_pct.round() as usize)
        );
        let off2 = 100.0 * fraction_off_by_factor(&pairs, 2.0);
        println!(
            "    off by ≥2x: {off2:.1} % (paper: Google ≈ 8 %, Mustang ≈ 23 %, HedgeFund highest)"
        );
        println!("    within ±5%: {:.1} %", within5 * 100.0);

        all.push(EnvStats {
            env: env.name().to_owned(),
            jobs: jobs.len(),
            runtime_percentiles: percentiles,
            cov_user_frac_gt1: user_gt1,
            cov_resources_frac_gt1: res_gt1,
            error_buckets: hist.buckets.clone(),
            error_tail_pct: hist.tail_pct,
            off_by_2x_pct: off2,
            within_5pct: within5 * 100.0,
        });
    }
    write_json("fig02_traces", &all);
}
