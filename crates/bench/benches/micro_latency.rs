//! Criterion micro-benchmarks for the latency-critical components:
//! 3σPredict lookups, expected-utility evaluation, distribution
//! conditioning, streaming-histogram insertion, and a representative
//! scheduling-cycle MILP solve.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use threesigma::driver::{run, run_observed, CycleTraceWriter, Experiment, SchedulerKind};
use threesigma::{DiscreteDist, UtilityCurve};
use threesigma_histogram::{RuntimeDistribution, StreamingHistogram};
use threesigma_milp::{BranchAndBound, Cmp, Model, SolverConfig};
use threesigma_obs::Recorder;
use threesigma_predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_workload::{generate, Environment, WorkloadConfig};

struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

fn bench_predictor(c: &mut Criterion) {
    let config = WorkloadConfig {
        duration: 60.0,
        pretrain_jobs: 5000,
        ..WorkloadConfig::e2e(Environment::Google, 3)
    };
    let trace = generate(&config);
    let mut predictor = Predictor::new(PredictorConfig::default());
    for j in &trace.pretrain {
        predictor.observe(&Attrs(&j.attributes), j.duration);
    }
    let probe = &trace.pretrain[17];
    c.bench_function("predict_distribution", |b| {
        b.iter(|| black_box(predictor.predict(&Attrs(black_box(&probe.attributes)))))
    });
    let mut predictor2 = predictor;
    c.bench_function("observe_runtime", |b| {
        b.iter(|| predictor2.observe(&Attrs(black_box(&probe.attributes)), black_box(123.0)))
    });
}

fn bench_distribution_math(c: &mut Criterion) {
    let samples: Vec<f64> = (0..500).map(|i| 50.0 + (i % 97) as f64 * 13.0).collect();
    let rd = RuntimeDistribution::from_samples(&samples, 80).unwrap();
    let dist = DiscreteDist::from_distribution(&rd, 40);
    let curve = UtilityCurve::SloStep {
        weight: 10.0,
        deadline: 900.0,
    };
    c.bench_function("expected_utility_40pts", |b| {
        b.iter(|| black_box(curve.expected(black_box(120.0), &dist)))
    });
    c.bench_function("survival_indexed_40pts", |b| {
        b.iter(|| black_box(dist.survival(black_box(400.0))))
    });
    c.bench_function("survival_linear_40pts", |b| {
        b.iter(|| black_box(dist.survival_linear(black_box(400.0))))
    });
    c.bench_function("condition_elapsed", |b| {
        b.iter(|| black_box(dist.condition(black_box(400.0))))
    });
    c.bench_function("histogram_insert", |b| {
        let mut h = StreamingHistogram::with_default_bins();
        let mut x = 1.0;
        b.iter(|| {
            x = (x * 1.37) % 9973.0 + 1.0;
            h.insert(black_box(x));
        })
    });
}

/// A representative scheduling-cycle MILP: 64 jobs × 12 options, demand
/// rows, and 8 set × 8 slot capacity rows.
fn cycle_model() -> Model {
    let mut m = Model::new();
    let mut all = Vec::new();
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..64 {
        let mut vars = Vec::new();
        for o in 0..12 {
            let u = 10.0 * next() / (1.0 + o as f64 * 0.3);
            vars.push(m.add_binary(u));
        }
        let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
        m.add_constraint(&terms, Cmp::Le, 1.0);
        m.add_sos1(&vars);
        all.push(vars);
    }
    for _set in 0..8 {
        for _slot in 0..8 {
            let mut terms = Vec::new();
            for vars in &all {
                for v in vars {
                    let coeff = 8.0 * next();
                    if coeff > 2.0 {
                        terms.push((*v, coeff));
                    }
                }
            }
            m.add_constraint(&terms, Cmp::Le, 192.0);
        }
    }
    m
}

/// Not a timing benchmark: counts mass-point entries examined by the
/// capacity-row survival queries of a representative cycle (64 jobs × 12
/// options probed at 8 set × 8 slot rows), for the binary-search table vs
/// the linear scan it replaced. Printed so the report can show the ≥2×
/// per-cycle scan-op reduction.
fn report_scan_op_reduction() {
    use threesigma::dist::scan_ops;
    let samples: Vec<f64> = (0..500).map(|i| 50.0 + (i % 97) as f64 * 13.0).collect();
    let rd = RuntimeDistribution::from_samples(&samples, 80).unwrap();
    let dists: Vec<DiscreteDist> = (1..=64)
        .map(|j| DiscreteDist::from_distribution(&rd, 40).scale(1.0 + j as f64 * 0.01))
        .collect();
    let queries: Vec<f64> = (0..8 * 8).map(|k| 30.0 * k as f64).collect();
    let run = |f: &dyn Fn(&DiscreteDist, f64) -> f64| {
        scan_ops::reset();
        let mut acc = 0.0;
        for d in &dists {
            for opt in 0..12 {
                for &t in &queries {
                    acc += f(d, t - opt as f64 * 60.0);
                }
            }
        }
        black_box(acc);
        scan_ops::get()
    };
    let linear = run(&|d, t| d.survival_linear(t));
    let indexed = run(&|d, t| d.survival(t));
    println!(
        "scan_ops/cycle_capacity_rows              linear: {linear}  indexed: {indexed}  \
         reduction: {:.1}x",
        linear as f64 / indexed as f64
    );
    assert!(
        indexed * 2 <= linear,
        "expected ≥2× fewer scan ops (indexed={indexed}, linear={linear})"
    );
}

fn bench_milp(c: &mut Criterion) {
    let model = cycle_model();
    let solver = BranchAndBound::with_config(SolverConfig {
        node_limit: 200,
        time_limit: Some(Duration::from_millis(100)),
        ..SolverConfig::default()
    });
    let warm = vec![0.0; model.num_vars()];
    let mut group = c.benchmark_group("milp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("cycle_solve_64jobs", |b| {
        b.iter(|| black_box(solver.solve_with_warm_start(&model, Some(&warm))))
    });
    group.finish();
}

fn bench_scan_ops(_c: &mut Criterion) {
    report_scan_op_reduction();
}

/// Observability overhead: the same end-to-end 3σSched run with the
/// recorder disabled (the default path — handles exist but every update is
/// one branch) vs enabled (atomics + per-cycle flush + trace line
/// formatting). The acceptance budget is ≤2% overhead enabled-vs-disabled.
fn bench_recorder_overhead(c: &mut Criterion) {
    let config = WorkloadConfig::e2e(Environment::Google, 3).with_duration(180.0);
    let trace = generate(&config);
    let exp = Experiment::paper_sc256().with_cycle(10.0);
    let mut group = c.benchmark_group("recorder");
    group
        .sample_size(40)
        .measurement_time(Duration::from_secs(20));
    group.bench_function("e2e_run_recorder_disabled", |b| {
        b.iter(|| black_box(run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap()))
    });
    group.bench_function("e2e_run_recorder_enabled", |b| {
        b.iter(|| {
            let recorder = Recorder::enabled();
            let mut writer = CycleTraceWriter::new();
            black_box(
                run_observed(
                    SchedulerKind::ThreeSigma,
                    &trace,
                    &exp,
                    &recorder,
                    &mut writer,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_predictor,
    bench_distribution_math,
    bench_scan_ops,
    bench_milp,
    bench_recorder_overhead
);
criterion_main!(benches);
