//! Shared plumbing for the figure/table reproduction harnesses.
//!
//! Every `fig*` bench binary reproduces one table or figure of the paper:
//! it generates the corresponding workload, runs the schedulers, prints the
//! same rows/series the paper reports, and writes machine-readable JSON to
//! `bench_results/`.
//!
//! Scale is controlled by `THREESIGMA_BENCH_SCALE`:
//!
//! * `quick` (default) — shortened traces and coarser scheduling cycles so
//!   the whole suite finishes in CI-scale time. Shapes (who wins, rough
//!   ratios, crossovers) are preserved.
//! * `paper` — the paper's 5-hour traces and near-paper cycle times.

use std::path::PathBuf;

use serde::Serialize;

use threesigma::driver::{run, Experiment, RunResult, SchedulerKind};
use threesigma_workload::{Environment, Trace, WorkloadConfig};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shortened traces, coarse cycles (default).
    Quick,
    /// Paper-scale traces and cycles.
    Paper,
}

impl Scale {
    /// Reads `THREESIGMA_BENCH_SCALE` (`quick` | `paper`).
    pub fn from_env() -> Self {
        match std::env::var("THREESIGMA_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Trace length for the E2E workloads of an environment. Mustang jobs
    /// are huge gangs, so its traces must be longer to hold enough jobs.
    pub fn trace_secs(&self, env: Environment) -> f64 {
        let hours = match (self, env) {
            (Scale::Quick, Environment::Google) => 2.0,
            (Scale::Quick, Environment::HedgeFund) => 1.5,
            (Scale::Quick, Environment::Mustang) => 8.0,
            (Scale::Paper, Environment::Google) => 5.0,
            (Scale::Paper, Environment::HedgeFund) => 5.0,
            (Scale::Paper, Environment::Mustang) => 15.0,
        };
        hours * 3600.0
    }

    /// Scheduling-cycle interval (the paper runs 1–2 s cycles; quick mode
    /// trades temporal resolution for wall-clock).
    pub fn cycle(&self) -> f64 {
        match self {
            Scale::Quick => 15.0,
            Scale::Paper => 5.0,
        }
    }

    /// Label for output.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// The standard experiment at this scale (SC256).
///
/// The measurement window is cut off shortly after the last arrival
/// (`drain`): jobs that have not completed by then contribute no goodput
/// (and missed SLOs count as misses), matching a fixed-length evaluation
/// window. Without the cut-off every scheduler eventually completes all
/// best-effort work and BE goodput stops discriminating.
pub fn sc256(scale: Scale) -> Experiment {
    let mut exp = Experiment::paper_sc256().with_cycle(scale.cycle());
    exp.engine.drain = Some(match scale {
        Scale::Quick => 1800.0,
        Scale::Paper => 3600.0,
    });
    exp
}

/// The standard E2E workload config for an environment at this scale.
pub fn e2e_config(env: Environment, scale: Scale, seed: u64) -> WorkloadConfig {
    WorkloadConfig::e2e(env, seed).with_duration(scale.trace_secs(env))
}

/// Runs one system, panicking on simulation errors (bench context).
pub fn run_system(kind: SchedulerKind, trace: &Trace, exp: &Experiment) -> RunResult {
    run(kind, trace, exp).unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()))
}

/// A row of metric results for JSON output.
#[derive(Debug, Serialize)]
pub struct MetricRow {
    /// System name.
    pub system: String,
    /// Workload / sweep-point label.
    pub label: String,
    /// SLO miss rate, percent.
    pub slo_miss_pct: f64,
    /// SLO goodput, machine-hours.
    pub slo_goodput_mh: f64,
    /// BE goodput, machine-hours.
    pub be_goodput_mh: f64,
    /// Total goodput, machine-hours.
    pub goodput_mh: f64,
    /// Mean best-effort latency, seconds (-1 when no BE job completed).
    pub be_latency_s: f64,
    /// Preemptions applied.
    pub preemptions: usize,
    /// Machine-hours destroyed by preemption.
    pub wasted_mh: f64,
}

impl MetricRow {
    /// Builds a row from a run result.
    pub fn new(system: &str, label: &str, r: &RunResult) -> Self {
        let m = &r.metrics;
        Self {
            system: system.to_owned(),
            label: label.to_owned(),
            slo_miss_pct: m.slo_miss_pct(),
            slo_goodput_mh: m.slo_goodput_hours(),
            be_goodput_mh: m.be_goodput_hours(),
            goodput_mh: m.goodput_hours(),
            be_latency_s: m.mean_be_latency().unwrap_or(-1.0),
            preemptions: m.preemptions,
            wasted_mh: m.wasted_hours(),
        }
    }
}

/// Prints the standard metric table header.
pub fn print_header(label_name: &str) {
    println!(
        "{:<22} {:<14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        label_name, "system", "SLO miss%", "SLO gp(M-h)", "BE gp(M-h)", "BE lat(s)", "waste(M-h)"
    );
}

/// Prints one standard metric row.
pub fn print_row(row: &MetricRow) {
    println!(
        "{:<22} {:<14} {:>10.1} {:>12.1} {:>12.1} {:>12.0} {:>10.1}",
        row.label,
        row.system,
        row.slo_miss_pct,
        row.slo_goodput_mh,
        row.be_goodput_mh,
        row.be_latency_s,
        row.wasted_mh
    );
}

/// Directory for machine-readable results (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

/// Writes a JSON artefact next to the printed table.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(&path, json).expect("write bench result");
    println!("\n[wrote {}]", path.display());
}

/// Banner printed by every harness.
pub fn banner(figure: &str, what: &str, scale: Scale) {
    println!("==========================================================");
    println!("{figure}: {what}");
    println!(
        "scale={} (set THREESIGMA_BENCH_SCALE=paper for full scale)",
        scale.name()
    );
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_workload::generate;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        // Note: avoids mutating the process environment (tests run in
        // parallel); from_env's default path is what CI exercises.
        let s = Scale::from_env();
        assert!(matches!(s, Scale::Quick | Scale::Paper));
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn quick_traces_are_shorter_than_paper() {
        for env in [
            Environment::Google,
            Environment::HedgeFund,
            Environment::Mustang,
        ] {
            assert!(Scale::Quick.trace_secs(env) < Scale::Paper.trace_secs(env));
        }
        assert!(Scale::Quick.cycle() >= Scale::Paper.cycle());
    }

    #[test]
    fn metric_row_mirrors_metrics() {
        let config = e2e_config(Environment::Google, Scale::Quick, 3);
        let config = WorkloadConfig {
            duration: 600.0,
            pretrain_jobs: 100,
            ..config
        };
        let trace = generate(&config);
        let exp = sc256(Scale::Quick);
        let r = run_system(SchedulerKind::Prio, &trace, &exp);
        let row = MetricRow::new("Prio", "test", &r);
        assert_eq!(row.system, "Prio");
        assert!((row.slo_miss_pct - r.metrics.slo_miss_pct()).abs() < 1e-12);
        assert!((row.goodput_mh - r.metrics.goodput_hours()).abs() < 1e-12);
        assert!(row.wasted_mh >= 0.0);
    }

    #[test]
    fn sc256_applies_measurement_window() {
        let exp = sc256(Scale::Quick);
        assert_eq!(exp.engine.drain, Some(1800.0));
        assert_eq!(exp.cluster.total_nodes(), 256);
    }
}
