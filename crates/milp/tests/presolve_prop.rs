//! Property tests: the presolve pass is equivalence-preserving.
//!
//! For random small mixed-binary models, running [`Presolve`] by hand and
//! solving the reduced model must agree with solving the original model
//! directly — same feasibility verdict, same optimal objective (after the
//! offset), and the restored assignment (eliminated variables mapped back
//! to their fixed values) must be feasible and integral in the original.

use proptest::prelude::*;

use threesigma_milp::{BranchAndBound, Cmp, Model, Presolve, VarKind};

const MAX_ROWS: usize = 6;
const TERMS_PER_ROW: usize = 4;

/// Assembles a small mixed-binary model from flat sampled vectors (the
/// vendored proptest only provides range and vec strategies).
#[allow(clippy::too_many_arguments)]
fn build(
    binaries: usize,
    n_cont: usize,
    cont: &[f64],
    objectives: &[i64],
    n_rows: usize,
    var_idx: &[usize],
    coeffs: &[i64],
    cmps: &[u8],
    rhs: &[i64],
    sos_len: usize,
) -> Model {
    let mut m = Model::new();
    let mut vars = Vec::new();
    for &obj in &objectives[..binaries] {
        vars.push(m.add_binary(obj as f64));
    }
    for k in 0..n_cont {
        let lower = cont[2 * k];
        let width = cont[2 * k + 1];
        vars.push(m.add_continuous(lower, lower + width, objectives[binaries + k] as f64));
    }
    for r in 0..n_rows {
        let terms: Vec<_> = (0..TERMS_PER_ROW)
            .map(|t| {
                (
                    var_idx[r * TERMS_PER_ROW + t],
                    coeffs[r * TERMS_PER_ROW + t],
                )
            })
            .filter(|(j, c)| *j < vars.len() && *c != 0)
            .map(|(j, c)| (vars[j], c as f64))
            .collect();
        if terms.is_empty() {
            continue;
        }
        let cmp = match cmps[r] {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constraint(&terms, cmp, rhs[r] as f64);
    }
    if sos_len >= 2 && binaries >= sos_len {
        let group: Vec<_> = vars[..sos_len].to_vec();
        m.add_sos1(&group);
    }
    m
}

proptest! {
    /// Presolve-then-solve equals solve-direct: the feasibility verdict
    /// matches, the objective (after the presolve offset) matches, and the
    /// restored full-length assignment is feasible in the original model.
    #[test]
    fn presolve_is_equivalence_preserving(
        binaries in 1usize..7,
        n_cont in 0usize..3,
        cont in prop::collection::vec(0.0f64..2.5, 4),
        objectives in prop::collection::vec(-3i64..6, 9),
        n_rows in 0usize..7,
        var_idx in prop::collection::vec(0usize..9, MAX_ROWS * TERMS_PER_ROW),
        coeffs in prop::collection::vec(-3i64..6, MAX_ROWS * TERMS_PER_ROW),
        cmps in prop::collection::vec(0u8..3, MAX_ROWS),
        rhs in prop::collection::vec(-4i64..11, MAX_ROWS),
        sos_len in 0usize..4,
    ) {
        let n_rows = n_rows.min(MAX_ROWS);
        let model = build(
            binaries, n_cont, &cont, &objectives, n_rows, &var_idx, &coeffs, &cmps, &rhs, sos_len,
        );
        let direct = BranchAndBound::new().solve(&model);
        let pre = Presolve::run(&model);

        if pre.is_infeasible() {
            prop_assert!(
                !direct.has_solution(),
                "presolve declared infeasible but the direct solve found {:?} obj {}",
                direct.status,
                direct.objective
            );
            continue;
        }

        let reduced = BranchAndBound::new().solve(pre.reduced());
        prop_assert_eq!(
            reduced.has_solution(),
            direct.has_solution(),
            "feasibility verdicts diverge: reduced {:?} vs direct {:?}",
            reduced.status,
            direct.status
        );
        if !direct.has_solution() {
            continue;
        }

        let objective = reduced.objective + pre.offset();
        prop_assert!(
            (objective - direct.objective).abs() <= 1e-6,
            "objective drift: presolved {} vs direct {}",
            objective,
            direct.objective
        );

        // Eliminated variables map back: the restored assignment has one
        // value per original variable, is feasible, integral on binaries,
        // and evaluates to the objective the solver reported.
        let restored = pre.restore(&reduced.values);
        prop_assert_eq!(restored.len(), model.num_vars());
        prop_assert!(
            model.is_feasible(&restored, 1e-6),
            "restored assignment violates an original constraint: {:?}",
            restored
        );
        for id in model.binary_vars() {
            let v = restored[id.index()];
            prop_assert!(
                (v - v.round()).abs() <= 1e-6 && (0.0..=1.0).contains(&v.round()),
                "restored binary {} not 0/1",
                v
            );
        }
        prop_assert!(
            (model.objective_value(&restored) - objective).abs() <= 1e-6,
            "restored assignment does not evaluate to the reported objective"
        );
    }

    /// Projecting a warm start into the reduced space keeps one value per
    /// surviving variable, and warm starts only seed — they never change
    /// the optimum the solver reports.
    #[test]
    fn warm_start_projection_is_shape_safe(
        binaries in 1usize..7,
        n_cont in 0usize..3,
        cont in prop::collection::vec(0.0f64..2.5, 4),
        objectives in prop::collection::vec(-3i64..6, 9),
        n_rows in 0usize..7,
        var_idx in prop::collection::vec(0usize..9, MAX_ROWS * TERMS_PER_ROW),
        coeffs in prop::collection::vec(-3i64..6, MAX_ROWS * TERMS_PER_ROW),
        cmps in prop::collection::vec(0u8..3, MAX_ROWS),
        rhs in prop::collection::vec(-4i64..11, MAX_ROWS),
        sos_len in 0usize..4,
    ) {
        let n_rows = n_rows.min(MAX_ROWS);
        let model = build(
            binaries, n_cont, &cont, &objectives, n_rows, &var_idx, &coeffs, &cmps, &rhs, sos_len,
        );
        let pre = Presolve::run(&model);
        if pre.is_infeasible() {
            continue;
        }
        let warm = vec![0.0; model.num_vars()];
        let projected = pre.project_warm(&warm);
        prop_assert_eq!(projected.len(), pre.reduced().num_vars());
        let with = BranchAndBound::new().solve_with_warm_start(pre.reduced(), Some(&projected));
        let without = BranchAndBound::new().solve(pre.reduced());
        prop_assert_eq!(with.has_solution(), without.has_solution());
        if with.has_solution() {
            prop_assert!((with.objective - without.objective).abs() <= 1e-6);
        }
    }
}

/// `VarKind` is re-exported and the builder accepts the fixture-facing
/// surface — a smoke check that it stays importable from the outside.
#[test]
fn public_surface_smoke() {
    let mut m = Model::new();
    let a = m.add_binary(1.0);
    m.add_constraint(&[(a, 1.0)], Cmp::Le, 1.0);
    assert_eq!(m.binary_vars().len(), 1);
    let _ = VarKind::Binary;
}
