//! Differential solver-oracle suite over the checked-in fixture corpus.
//!
//! Every `tests/fixtures/*.milp` file is a real scheduling-cycle MILP
//! dumped by `cargo run --example dump_milp_fixtures` (bit-exact text
//! format). Each fixture is replayed through all three solver tiers and
//! the incremental wrapper, and the tiers are held to their contracts:
//!
//! * tier 2 is deterministic: two cold solves are bit-for-bit identical;
//! * the incremental wrapper is invisible: with or without a cache hit,
//!   its answer is bit-for-bit the answer a fresh rebuild produces;
//! * tiers 0 and 1 are sound: whenever they claim a solution it is
//!   feasible and its objective never exceeds tier 2's (maximisation).

use std::path::PathBuf;

use threesigma_milp::{
    solver_for_tier, BranchAndBound, IncrementalSolver, MipStatus, Model, Solver, SolverConfig,
};

/// The scheduler's stage-3 budgets, minus the wall clock (a wall-clock
/// limit would make `timed_out` — and thus cache behaviour — machine-
/// dependent; the node budget alone keeps every replay deterministic).
fn oracle_config() -> SolverConfig {
    SolverConfig {
        node_limit: 150,
        time_limit: None,
        gap_tolerance: 1e-4,
        ..SolverConfig::default()
    }
}

fn fixtures() -> Vec<(String, Model)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixture dir exists; regenerate with `cargo run --example dump_milp_fixtures`")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "milp"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 16,
        "fixture corpus suspiciously small ({} files)",
        names.len()
    );
    names
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("read fixture");
            let model = Model::from_text(&text)
                .unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e}"));
            // The corpus must round-trip bit-exactly, or the fixture on
            // disk is not the model we are testing.
            assert_eq!(model.to_text(), text, "fixture {name} round-trip drift");
            (name, model)
        })
        .collect()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn tier2_cold_solves_are_bit_for_bit_deterministic() {
    for (name, model) in fixtures() {
        let warm = vec![0.0; model.num_vars()];
        let a =
            BranchAndBound::with_config(oracle_config()).solve_with_warm_start(&model, Some(&warm));
        let b =
            BranchAndBound::with_config(oracle_config()).solve_with_warm_start(&model, Some(&warm));
        assert_eq!(a.status, b.status, "{name}");
        assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{name}");
        assert_eq!(bits(&a.values), bits(&b.values), "{name}");
        assert_eq!(a.nodes, b.nodes, "{name}");
        assert_eq!(a.lp_iterations, b.lp_iterations, "{name}");
        assert!(
            a.has_solution(),
            "{name}: the all-zero warm start is always feasible, got {:?}",
            a.status
        );
    }
}

#[test]
fn incremental_reuse_matches_a_tier2_rebuild_bit_for_bit() {
    for (name, model) in fixtures() {
        let warm = vec![0.0; model.num_vars()];
        let rebuild =
            BranchAndBound::with_config(oracle_config()).solve_with_warm_start(&model, Some(&warm));

        let mut inc = IncrementalSolver::with_config(oracle_config());
        let first = inc.solve_with_warm_start(&model, Some(&warm));
        let second = inc.solve_with_warm_start(&model, Some(&warm));
        if rebuild.status == MipStatus::Optimal {
            assert_eq!(
                inc.stats().reuses,
                1,
                "{name}: clean optimal solve must be cached"
            );
        }
        for (label, sol) in [("first", &first), ("second", &second)] {
            assert_eq!(sol.status, rebuild.status, "{name} {label}");
            assert_eq!(
                sol.objective.to_bits(),
                rebuild.objective.to_bits(),
                "{name} {label}"
            );
            assert_eq!(bits(&sol.values), bits(&rebuild.values), "{name} {label}");
            assert_eq!(sol.nodes, rebuild.nodes, "{name} {label}");
            assert_eq!(sol.lp_iterations, rebuild.lp_iterations, "{name} {label}");
        }
    }
}

#[test]
fn cheap_tiers_are_sound_and_never_beat_tier2() {
    for (name, model) in fixtures() {
        let warm = vec![0.0; model.num_vars()];
        let reference =
            BranchAndBound::with_config(oracle_config()).solve_with_warm_start(&model, Some(&warm));
        assert!(
            reference.has_solution(),
            "{name}: tier 2 must solve the corpus"
        );

        for tier in [0u8, 1] {
            let mut solver = solver_for_tier(tier, oracle_config());
            assert_eq!(solver.tier(), tier);
            let sol = solver.solve_with_warm_start(&model, Some(&warm));
            assert!(
                sol.has_solution(),
                "{name}: tier {tier} found nothing despite a feasible warm start"
            );
            assert!(
                model.is_feasible(&sol.values, 1e-6),
                "{name}: tier {tier} returned an infeasible assignment"
            );
            // The returned objective must be the objective of the returned
            // values, and a cheap tier can at best match the exact tier.
            assert!(
                (model.objective_value(&sol.values) - sol.objective).abs() <= 1e-6,
                "{name}: tier {tier} mislabeled its own objective"
            );
            assert!(
                sol.objective <= reference.objective + 1e-6,
                "{name}: tier {tier} objective {} beats tier 2's {}",
                sol.objective,
                reference.objective
            );
        }

        // Tier 0 never branches; tier 1 stops at the root.
        let t0 = solver_for_tier(0, oracle_config()).solve_with_warm_start(&model, Some(&warm));
        assert_eq!(t0.nodes, 0, "{name}: tier 0 expanded search nodes");
        let t1 = solver_for_tier(1, oracle_config()).solve_with_warm_start(&model, Some(&warm));
        assert!(t1.nodes <= 1, "{name}: tier 1 expanded {} nodes", t1.nodes);
    }
}

#[test]
fn tier_metadata_is_stable() {
    let names: Vec<&str> = (0..=2)
        .map(|t| solver_for_tier(t, SolverConfig::default()).name())
        .collect();
    assert_eq!(names, ["greedy-rounding", "lp-repair", "branch-and-bound"]);
    for t in 0..=2u8 {
        assert_eq!(solver_for_tier(t, SolverConfig::default()).tier(), t);
    }
}
