//! Sparse MILP problem builder.
//!
//! 3σSched's MILP generator (§4.3.3) produces, per pending job, one binary
//! indicator per placement option plus continuous per-partition allocation
//! variables, a demand row tying them together, and shared capacity rows.
//! This module is the neutral representation those pieces compile into.

use std::fmt;

/// Identifier of a variable within a [`Model`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense column index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Continuous or binary variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within `[lower, upper]`.
    Continuous,
    /// Binary: integer restricted to `{0, 1}` (bounds may tighten further).
    Binary,
}

/// Comparison sense of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`.
    Le,
    /// `expr ≥ rhs`.
    Ge,
    /// `expr = rhs`.
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
    pub name: Option<String>,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse `(column, coefficient)` terms, deduplicated and sorted.
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A MILP in build form: maximise `objective · x` subject to linear rows,
/// variable bounds, integrality, and SOS1 groups.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sos1: Vec<Vec<usize>>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the given
    /// objective coefficient. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`, either bound is NaN, or `lower` is not
    /// finite (the simplex rests non-basic variables on finite bounds; every
    /// scheduling variable is naturally `≥ 0`).
    pub fn add_continuous(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        assert!(lower <= upper, "lower {lower} > upper {upper}");
        assert!(lower.is_finite(), "lower bound must be finite");
        self.push(Variable {
            kind: VarKind::Continuous,
            lower,
            upper,
            objective,
            name: None,
        })
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, objective: f64) -> VarId {
        self.push(Variable {
            kind: VarKind::Binary,
            lower: 0.0,
            upper: 1.0,
            objective,
            name: None,
        })
    }

    fn push(&mut self, v: Variable) -> VarId {
        self.vars.push(v);
        VarId(self.vars.len() - 1)
    }

    /// Attaches a debug name to a variable (shows up in [`Model`] display).
    pub fn set_name(&mut self, var: VarId, name: impl Into<String>) {
        self.vars[var.0].name = Some(name.into());
    }

    /// Adds the linear row `Σ coeff·var  cmp  rhs`. Duplicate variable
    /// entries are summed. Zero coefficients are dropped. Returns the row
    /// index.
    ///
    /// # Panics
    ///
    /// Panics on NaN coefficients/rhs or out-of-model variable ids.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) -> usize {
        assert!(!rhs.is_nan(), "NaN rhs");
        let mut sparse: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            assert!(v.0 < self.vars.len(), "unknown variable {v:?}");
            assert!(!c.is_nan(), "NaN coefficient");
            sparse.push((v.0, *c));
        }
        sparse.sort_unstable_by_key(|(i, _)| *i);
        // Merge duplicates, drop exact zeros (the "internal pruning" of
        // generated expressions mentioned in §4.3.6).
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(sparse.len());
        for (i, c) in sparse {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc += c,
                _ => merged.push((i, c)),
            }
        }
        merged.retain(|(_, c)| *c != 0.0);
        self.constraints.push(Constraint {
            terms: merged,
            cmp,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// Declares an SOS1 group: at most one of `vars` may be non-zero in an
    /// integral solution. 3σSched uses one group per job ("at most one
    /// placement option", §4.3.3); branch-and-bound branches on the group
    /// rather than single variables.
    ///
    /// Note this is a *branching hint* only — the caller still adds the
    /// corresponding `Σ I ≤ 1` demand row (the hint does not imply the
    /// constraint).
    pub fn add_sos1(&mut self, vars: &[VarId]) {
        for v in vars {
            assert!(v.0 < self.vars.len(), "unknown variable {v:?}");
        }
        if vars.len() > 1 {
            self.sos1.push(vars.iter().map(|v| v.0).collect());
        }
    }

    /// Tightens a variable's bounds (used by branch-and-bound node fixing).
    ///
    /// # Panics
    ///
    /// Panics if the new bounds are inverted.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "lower {lower} > upper {upper}");
        self.vars[var.0].lower = lower;
        self.vars[var.0].upper = upper;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of all binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Objective coefficient of one variable.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.vars[var.0].objective
    }

    /// Objective value of an assignment (no feasibility check).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .zip(x)
            .map(|(v, xi)| v.objective * xi)
            .sum()
    }

    /// Checks whether `x` satisfies all rows, bounds, and integrality within
    /// `tol`. Useful for tests and for vetting warm starts.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, xi) in self.vars.iter().zip(x) {
            if *xi < v.lower - tol || *xi > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Binary && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(i, coef)| coef * x[*i]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "max {}",
            self.vars
                .iter()
                .enumerate()
                .filter(|(_, v)| v.objective != 0.0)
                .map(|(i, v)| format!(
                    "{:+}·{}",
                    v.objective,
                    v.name.clone().unwrap_or_else(|| format!("x{i}"))
                ))
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        for c in &self.constraints {
            let lhs = c
                .terms
                .iter()
                .map(|(i, coef)| {
                    let name = self.vars[*i]
                        .name
                        .clone()
                        .unwrap_or_else(|| format!("x{i}"));
                    format!("{coef:+}·{name}")
                })
                .collect::<Vec<_>>()
                .join(" ");
            let op = match c.cmp {
                Cmp::Le => "<=",
                Cmp::Ge => ">=",
                Cmp::Eq => "=",
            };
            writeln!(f, "  {lhs} {op} {}", c.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_continuous(0.0, 5.0, 2.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.binary_vars(), vec![a]);
    }

    #[test]
    fn duplicate_terms_merge_and_zeros_drop() {
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        let b = m.add_binary(0.0);
        m.add_constraint(&[(a, 1.0), (a, 2.0), (b, 0.0)], Cmp::Le, 4.0);
        assert_eq!(m.constraints[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn feasibility_check_covers_bounds_rows_integrality() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_continuous(0.0, 2.0, 1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 2.0);
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 1.5], 1e-9), "row violated");
        assert!(!m.is_feasible(&[0.5, 0.5], 1e-9), "binary fractional");
        assert!(!m.is_feasible(&[0.0, 3.0], 1e-9), "upper bound violated");
        assert!(!m.is_feasible(&[0.0], 1e-9), "wrong arity");
    }

    #[test]
    fn objective_value_is_a_dot_product() {
        let mut m = Model::new();
        m.add_binary(3.0);
        m.add_continuous(0.0, 10.0, -1.0);
        assert_eq!(m.objective_value(&[1.0, 4.0]), -1.0);
    }

    #[test]
    fn singleton_sos1_is_ignored() {
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        m.add_sos1(&[a]);
        assert!(m.sos1.is_empty());
        let b = m.add_binary(0.0);
        m.add_sos1(&[a, b]);
        assert_eq!(m.sos1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn inverted_bounds_panic() {
        let mut m = Model::new();
        m.add_continuous(2.0, 1.0, 0.0);
    }

    #[test]
    fn objective_coeff_accessor() {
        let mut m = Model::new();
        let a = m.add_binary(7.5);
        let b = m.add_continuous(0.0, 1.0, -2.0);
        assert_eq!(m.objective_coeff(a), 7.5);
        assert_eq!(m.objective_coeff(b), -2.0);
    }

    #[test]
    fn constraint_index_is_returned() {
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        assert_eq!(m.add_constraint(&[(a, 1.0)], Cmp::Le, 1.0), 0);
        assert_eq!(m.add_constraint(&[(a, 2.0)], Cmp::Ge, 0.0), 1);
        assert_eq!(m.num_constraints(), 2);
    }

    #[test]
    fn set_bounds_tightens() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        m.set_bounds(a, 1.0, 1.0);
        assert!(m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[0.0], 1e-9));
    }

    #[test]
    fn display_is_readable() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        m.set_name(a, "I_slo_0");
        m.add_constraint(&[(a, 1.0)], Cmp::Le, 1.0);
        let s = format!("{m}");
        assert!(s.contains("I_slo_0"));
        assert!(s.contains("<= 1"));
    }
}
