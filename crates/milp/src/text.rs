//! Bit-exact textual model serialisation for solver fixtures.
//!
//! The differential solver-oracle suite replays MILP models dumped from
//! corpus seed runs. The milp crate is a zero-dependency leaf (layering
//! lint), so the format is hand-rolled: line-oriented ASCII with every
//! `f64` spelled as its 16-hex-digit IEEE bit pattern, making a
//! `to_text → from_text` round trip lossless down to `-0.0` and NaN
//! payloads.
//!
//! ```text
//! milp v1
//! vars 2
//! b 0000000000000000 3ff0000000000000 4024000000000000
//! c 0000000000000000 4008000000000000 3ff0000000000000
//! rows 1
//! le 4000000000000000 2 0:3ff0000000000000 1:3ff0000000000000
//! sos1 0
//! end
//! ```

use std::fmt::Write as _;

use crate::model::{Cmp, Constraint, Model, VarKind, Variable};

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(s: &str) -> Result<f64, String> {
    let bits = u64::from_str_radix(s, 16).map_err(|e| format!("bad f64 hex {s:?}: {e}"))?;
    Ok(f64::from_bits(bits))
}

impl Model {
    /// Serialises the model to the fixture text format (bit-exact).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("milp v1\n");
        let _ = writeln!(out, "vars {}", self.vars.len());
        for v in &self.vars {
            let kind = match v.kind {
                VarKind::Binary => 'b',
                VarKind::Continuous => 'c',
            };
            let _ = writeln!(
                out,
                "{kind} {} {} {}",
                hex(v.lower),
                hex(v.upper),
                hex(v.objective)
            );
        }
        let _ = writeln!(out, "rows {}", self.constraints.len());
        for c in &self.constraints {
            let cmp = match c.cmp {
                Cmp::Le => "le",
                Cmp::Ge => "ge",
                Cmp::Eq => "eq",
            };
            let _ = write!(out, "{cmp} {} {}", hex(c.rhs), c.terms.len());
            for (j, coef) in &c.terms {
                let _ = write!(out, " {j}:{}", hex(*coef));
            }
            out.push('\n');
        }
        let _ = writeln!(out, "sos1 {}", self.sos1.len());
        for group in &self.sos1 {
            let members: Vec<String> = group.iter().map(|j| j.to_string()).collect();
            let _ = writeln!(out, "{}", members.join(" "));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a model from the fixture text format.
    pub fn from_text(text: &str) -> Result<Model, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        let mut next = |what: &str| lines.next().ok_or_else(|| format!("missing {what}"));
        if next("header")? != "milp v1" {
            return Err("expected `milp v1` header".into());
        }
        let count = |line: &str, tag: &str| -> Result<usize, String> {
            let rest = line
                .strip_prefix(tag)
                .ok_or_else(|| format!("expected `{tag} N`, got {line:?}"))?;
            rest.trim()
                .parse()
                .map_err(|e| format!("bad {tag} count: {e}"))
        };
        let n = count(next("vars")?, "vars")?;
        let mut model = Model::new();
        for _ in 0..n {
            let line = next("variable line")?;
            let mut parts = line.split_whitespace();
            let kind = parts.next().ok_or("empty variable line")?;
            let lower = unhex(parts.next().ok_or("missing lower")?)?;
            let upper = unhex(parts.next().ok_or("missing upper")?)?;
            let objective = unhex(parts.next().ok_or("missing objective")?)?;
            let kind = match kind {
                "b" => VarKind::Binary,
                "c" => VarKind::Continuous,
                other => return Err(format!("unknown var kind {other:?}")),
            };
            // Push raw to preserve exact bounds (the builder methods
            // normalise/validate, which would reject e.g. presolve-tightened
            // binaries dumped mid-pipeline).
            model.vars.push(Variable {
                kind,
                lower,
                upper,
                objective,
                name: None,
            });
        }
        let m = count(next("rows")?, "rows")?;
        for _ in 0..m {
            let line = next("row line")?;
            let mut parts = line.split_whitespace();
            let cmp = match parts.next().ok_or("empty row line")? {
                "le" => Cmp::Le,
                "ge" => Cmp::Ge,
                "eq" => Cmp::Eq,
                other => return Err(format!("unknown cmp {other:?}")),
            };
            let rhs = unhex(parts.next().ok_or("missing rhs")?)?;
            let terms_len: usize = parts
                .next()
                .ok_or("missing term count")?
                .parse()
                .map_err(|e| format!("bad term count: {e}"))?;
            let mut terms = Vec::with_capacity(terms_len);
            for _ in 0..terms_len {
                let term = parts.next().ok_or("missing term")?;
                let (j, coef) = term.split_once(':').ok_or("term missing `:`")?;
                let j: usize = j.parse().map_err(|e| format!("bad term index: {e}"))?;
                if j >= model.vars.len() {
                    return Err(format!("term index {j} out of range"));
                }
                terms.push((j, unhex(coef)?));
            }
            model.constraints.push(Constraint { terms, cmp, rhs });
        }
        let g = count(next("sos1")?, "sos1")?;
        for _ in 0..g {
            let line = next("sos1 group")?;
            let mut group = Vec::new();
            for part in line.split_whitespace() {
                let j: usize = part.parse().map_err(|e| format!("bad sos1 index: {e}"))?;
                if j >= model.vars.len() {
                    return Err(format!("sos1 index {j} out of range"));
                }
                group.push(j);
            }
            model.sos1.push(group);
        }
        if next("end")? != "end" {
            return Err("expected `end` terminator".into());
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Model {
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        let y = m.add_continuous(0.0, 3.5, -0.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0)], Cmp::Le, 10.0);
        m.add_constraint(&[(y, 1.0), (a, -4.0)], Cmp::Ge, -0.5);
        m.add_constraint(&[(y, 2.0)], Cmp::Eq, 7.0);
        m.add_sos1(&[a, b]);
        m
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = sample();
        let text = m.to_text();
        let back = Model::from_text(&text).unwrap();
        assert_eq!(m.to_text(), back.to_text());
        assert_eq!(m.num_vars(), back.num_vars());
        assert_eq!(m.num_constraints(), back.num_constraints());
        for (a, b) in m.vars.iter().zip(&back.vars) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        }
    }

    #[test]
    fn negative_zero_and_infinities_survive() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -0.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, f64::INFINITY);
        let back = Model::from_text(&m.to_text()).unwrap();
        assert_eq!(back.vars[0].upper.to_bits(), f64::INFINITY.to_bits());
        assert_eq!(back.vars[0].objective.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.constraints[0].rhs.to_bits(), f64::INFINITY.to_bits());
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "milp v2\n",
            "milp v1\nvars x\n",
            "milp v1\nvars 1\nq 0 0 0\nrows 0\nsos1 0\nend\n",
            "milp v1\nvars 0\nrows 1\nle 0000000000000000 1 5:0000000000000000\nsos1 0\nend\n",
            "milp v1\nvars 0\nrows 0\nsos1 0\n",
        ] {
            assert!(Model::from_text(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parsed_model_solves_identically() {
        use crate::branch::BranchAndBound;
        let m = sample();
        let back = Model::from_text(&m.to_text()).unwrap();
        let a = BranchAndBound::new().solve(&m);
        let b = BranchAndBound::new().solve(&back);
        assert_eq!(a.status, b.status);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.values), bits(&b.values));
    }
}
