//! Mixed-integer linear programming for 3σSched.
//!
//! The paper compiles every scheduling cycle into a MILP and hands it to an
//! external solver with a warm start and a time budget (§4.3.6). The Rust
//! MILP ecosystem offers no mature pure-Rust solver, so this crate implements
//! the required subset from scratch:
//!
//! * [`model`] — a sparse problem builder (continuous and binary variables,
//!   `≤ / ≥ / =` rows, SOS1 groups for "at most one placement option").
//! * [`simplex`] — a bounded-variable primal simplex with an explicit basis
//!   inverse and a composite phase-1, sized for the dense-but-small LPs a
//!   scheduling cycle produces (thousands of columns, hundreds of rows).
//! * [`branch`] — best-bound branch-and-bound with SOS1-aware branching,
//!   fix-and-repair rounding incumbents, warm-start seeding from the previous
//!   cycle's schedule, and node/time budgets that return the best incumbent
//!   found so far (the solver contract §4.3.6 relies on).
//! * [`presolve`] — equivalence-preserving reductions (bound tightening,
//!   fixed-variable elimination, dominated-option removal) shared by all
//!   solver tiers.
//! * [`tiers`] — the [`Solver`] trait plus the cheap tier-0/1 backends that
//!   mirror the scheduler's degradation ladder.
//! * [`incremental`] — cycle-over-cycle model diffing and provably-safe
//!   solution reuse for the tier-2 path.
//! * [`text`] — bit-exact fixture serialisation for the differential
//!   solver-oracle suite.
//!
//! The solver maximises by convention (scheduling maximises expected
//! utility); minimisation is a caller-side negation.
//!
//! # Example
//!
//! ```
//! use threesigma_milp::{BranchAndBound, Cmp, Model};
//!
//! // max 10a + 6b + 4c  s.t.  5a + 4b + 3c ≤ 10, a,b,c ∈ {0,1}
//! let mut m = Model::new();
//! let a = m.add_binary(10.0);
//! let b = m.add_binary(6.0);
//! let c = m.add_binary(4.0);
//! m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
//! let solution = BranchAndBound::new().solve(&m);
//! assert!((solution.objective - 16.0).abs() < 1e-6); // a + b
//! ```

pub mod branch;
pub mod clock;
pub mod incremental;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod text;
pub mod tiers;

pub use branch::{BranchAndBound, MipSolution, MipStatus, SolverConfig};
pub use incremental::{diff_models, IncrementalSolver, IncrementalStats, ModelDiff};
pub use model::{Cmp, Model, VarId, VarKind};
pub use presolve::{Presolve, PresolveStats};
pub use simplex::{Basis, LpOutcome, LpSolution};
pub use tiers::{solver_for_tier, GreedyRounding, LpRepair, Solver};
