//! Bounded-variable primal simplex with an explicit basis inverse.
//!
//! Solves the LP relaxations branch-and-bound needs: maximise `c·x` subject
//! to sparse rows and finite-or-infinite variable bounds. A composite
//! phase-1 (minimise total bound infeasibility with dynamically recomputed
//! costs) finds a feasible basis from the all-slack start; phase 2 then
//! optimises the true objective. Dantzig pricing with a Bland's-rule
//! fallback guards against cycling, and the basis inverse is refactorised
//! periodically to bound drift.
//!
//! Scheduling-cycle LPs are small (hundreds of rows) but re-solved at every
//! branch-and-bound node, so the implementation favours predictable `O(m²)`
//! pivots and `O(nm)` pricing over sparse-factorisation sophistication.

// Dense kernel loops index several parallel arrays at once; the indexed
// form is clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]
use crate::model::{Cmp, Model};

/// Feasibility tolerance on bounds and rows.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost optimality tolerance.
pub const OPT_TOL: f64 = 1e-7;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Pivots between basis-inverse refactorisations.
const REFACTOR_EVERY: usize = 100;

/// Terminal status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpOutcome {
    /// Optimal within tolerances.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded above.
    Unbounded,
    /// Iteration limit hit before convergence (solution is feasible but may
    /// be suboptimal).
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Terminal status.
    pub outcome: LpOutcome,
    /// Objective value of `values` (meaningful unless infeasible).
    pub objective: f64,
    /// One value per model variable (structural columns only).
    pub values: Vec<f64>,
    /// Simplex iterations performed across both phases.
    pub iterations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// A snapshot of a simplex basis: which variable occupies each basis row and
/// which bound every nonbasic variable rests on.
///
/// Opaque to callers — obtain one from [`solve_lp_warm`] and feed it back to
/// a later [`solve_lp_warm`] call on a model with the *same* variable and row
/// counts to reoptimise from that vertex (dual simplex first, then primal)
/// instead of restarting from the all-slack basis. An incompatible or
/// singular snapshot is ignored and the solve falls back to a cold start, so
/// reuse is always safe.
#[derive(Debug, Clone)]
pub struct Basis {
    state: Vec<VarState>,
    basis: Vec<usize>,
}

impl Basis {
    /// True when the snapshot's dimensions match an (n structural, m rows)
    /// tableau — the precondition for installing it.
    pub fn fits(&self, num_vars: usize, num_constraints: usize) -> bool {
        self.state.len() == num_vars + num_constraints && self.basis.len() == num_constraints
    }
}

/// Outcome of the dual-simplex reoptimisation loop.
enum DualResult {
    /// Primal feasibility restored; continue with primal phase 2.
    Feasible,
    /// Dual unbounded: the LP is primal infeasible.
    Infeasible,
    /// Numerical trouble or iteration cap; fall back to composite phase 1.
    Stalled,
}

struct Tableau {
    /// Sparse columns, structural then slack: `(row, coefficient)`.
    cols: Vec<Vec<(usize, f64)>>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// True (phase-2) objective per column.
    cost: Vec<f64>,
    rhs: Vec<f64>,
    n_structural: usize,
    m: usize,
    state: Vec<VarState>,
    /// Variable occupying each basis row.
    basis: Vec<usize>,
    /// Dense row-major basis inverse.
    binv: Vec<f64>,
    /// Current values of basic variables, by row.
    xb: Vec<f64>,
    /// Current values of nonbasic variables (their resting bound).
    xn: Vec<f64>,
    pivots_since_refactor: usize,
    iterations: usize,
}

impl Tableau {
    fn new(model: &Model, bounds: Option<&[(f64, f64)]>) -> Self {
        let n = model.num_vars();
        let m = model.num_constraints();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n + m];
        for (r, c) in model.constraints.iter().enumerate() {
            for (j, coef) in &c.terms {
                cols[*j].push((r, *coef));
            }
        }
        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        let mut cost = Vec::with_capacity(n + m);
        for (j, v) in model.vars.iter().enumerate() {
            let (lo, hi) = match bounds {
                Some(b) => b[j],
                None => (v.lower, v.upper),
            };
            lower.push(lo);
            upper.push(hi);
            cost.push(v.objective);
        }
        let mut rhs = Vec::with_capacity(m);
        for (r, c) in model.constraints.iter().enumerate() {
            let slack = n + r;
            cols[slack].push((r, 1.0));
            let (lo, hi) = match c.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(hi);
            cost.push(0.0);
            rhs.push(c.rhs);
        }
        // Nonbasic structural variables rest on a finite bound; slacks form
        // the initial (identity) basis.
        let mut state = Vec::with_capacity(n + m);
        let mut xn = vec![0.0; n + m];
        for j in 0..n {
            if lower[j].is_finite() {
                state.push(VarState::AtLower);
                xn[j] = lower[j];
            } else {
                state.push(VarState::AtUpper);
                xn[j] = upper[j];
            }
        }
        let mut basis = Vec::with_capacity(m);
        for r in 0..m {
            state.push(VarState::Basic(r));
            basis.push(n + r);
        }
        let mut t = Self {
            cols,
            lower,
            upper,
            cost,
            rhs,
            n_structural: n,
            m,
            state,
            basis,
            binv: identity(m),
            xb: vec![0.0; m],
            xn,
            pivots_since_refactor: 0,
            iterations: 0,
        };
        t.recompute_xb();
        t
    }

    /// Discards the current basis and returns to the all-slack cold start
    /// (the escape hatch when a warm basis leads phase 1 into a degenerate
    /// cycle that even Bland's rule cannot break — the composite phase-1
    /// cost changes every iteration, so no pivoting rule guarantees
    /// termination from an arbitrary starting basis).
    fn reset_cold(&mut self) {
        let n = self.n_structural;
        for j in 0..n {
            if self.lower[j].is_finite() {
                self.state[j] = VarState::AtLower;
                self.xn[j] = self.lower[j];
            } else {
                self.state[j] = VarState::AtUpper;
                self.xn[j] = self.upper[j];
            }
        }
        for r in 0..self.m {
            self.state[n + r] = VarState::Basic(r);
            self.basis[r] = n + r;
            self.xn[n + r] = 0.0;
        }
        self.binv = identity(self.m);
        self.pivots_since_refactor = 0;
        self.recompute_xb();
    }

    /// Replaces the all-slack start with a previously captured basis. The
    /// nonbasic resting values are recomputed from the *current* bounds (a
    /// branch-and-bound child tightens bounds between solves), resting each
    /// variable on a finite bound. Returns `false` — leaving the tableau in
    /// its valid cold-start state — when the snapshot does not fit or its
    /// basis matrix is singular under the current column set.
    fn install(&mut self, b: &Basis) -> bool {
        if !b.fits(self.n_structural, self.m) {
            return false;
        }
        // Validate consistency: every basis row names a column marked Basic
        // for that row, and states/rows agree in count.
        let mut basic_seen = 0usize;
        for (j, s) in b.state.iter().enumerate() {
            if let VarState::Basic(r) = s {
                if *r >= self.m || b.basis[*r] != j {
                    return false;
                }
                basic_seen += 1;
            }
        }
        if basic_seen != self.m {
            return false;
        }
        let saved_state = std::mem::replace(&mut self.state, b.state.clone());
        let saved_basis = std::mem::replace(&mut self.basis, b.basis.clone());
        let saved_binv = self.binv.clone();
        if !self.refactorize() {
            self.state = saved_state;
            self.basis = saved_basis;
            self.binv = saved_binv;
            return false;
        }
        for j in 0..self.state.len() {
            match self.state[j] {
                VarState::Basic(_) => {}
                VarState::AtLower => {
                    if self.lower[j].is_finite() {
                        self.xn[j] = self.lower[j];
                    } else {
                        self.state[j] = VarState::AtUpper;
                        self.xn[j] = self.upper[j];
                    }
                }
                VarState::AtUpper => {
                    if self.upper[j].is_finite() {
                        self.xn[j] = self.upper[j];
                    } else {
                        self.state[j] = VarState::AtLower;
                        self.xn[j] = self.lower[j];
                    }
                }
            }
        }
        self.recompute_xb();
        true
    }

    fn snapshot(&self) -> Basis {
        Basis {
            state: self.state.clone(),
            basis: self.basis.clone(),
        }
    }

    /// True when no nonbasic column prices out as improving for `cost` — the
    /// precondition for dual-simplex reoptimisation.
    fn dual_feasible(&self, cost: &[f64]) -> bool {
        let y = self.duals(cost);
        for j in 0..self.cols.len() {
            let sigma = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(j, cost, &y);
            if sigma > 0.0 && d > OPT_TOL {
                return false;
            }
            if sigma < 0.0 && d < -OPT_TOL {
                return false;
            }
        }
        true
    }

    /// Dual-simplex reoptimisation: starting from a dual-feasible basis with
    /// primal violations (the warm-start case after bound/rhs changes),
    /// drives the most-violated basic variable to its bound per iteration
    /// while the ratio test preserves dual feasibility.
    fn dual_loop(&mut self, cost: &[f64], iter_limit: usize) -> DualResult {
        loop {
            // Leaving row: largest bound violation among basic variables.
            let mut leaving: Option<(usize, f64, f64)> = None; // (row, violation, target)
            for i in 0..self.m {
                let j = self.basis[i];
                let x = self.xb[i];
                let (viol, target) = if x < self.lower[j] - FEAS_TOL {
                    (self.lower[j] - x, self.lower[j])
                } else if x > self.upper[j] + FEAS_TOL {
                    (x - self.upper[j], self.upper[j])
                } else {
                    continue;
                };
                if leaving.is_none_or(|(_, v, _)| viol > v) {
                    leaving = Some((i, viol, target));
                }
            }
            let Some((r, _, target)) = leaving else {
                return DualResult::Feasible;
            };
            if self.iterations >= iter_limit {
                return DualResult::Stalled;
            }

            let delta_r = target - self.xb[r];
            let y = self.duals(cost);
            // Row r of Binv·A for every nonbasic column, priced lazily.
            let m = self.m;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, ratio, sigma)
            for j in 0..self.cols.len() {
                let sigma = match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower => 1.0,
                    VarState::AtUpper => -1.0,
                };
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let mut alpha = 0.0;
                for (row, coef) in &self.cols[j] {
                    alpha += self.binv[r * m + row] * coef;
                }
                // xb[r] moves at rate −sigma·alpha per unit step of x_j; the
                // candidate must move it toward the violated bound.
                let rate = -sigma * alpha;
                if rate * delta_r.signum() <= PIVOT_TOL {
                    continue;
                }
                let d = self.reduced_cost(j, cost, &y);
                let ratio = d.abs() / alpha.abs();
                if entering
                    .is_none_or(|(ej, er, _)| ratio < er - 1e-12 || (ratio < er + 1e-12 && j < ej))
                {
                    entering = Some((j, ratio, sigma));
                }
            }
            let Some((q, _, sigma)) = entering else {
                // No column can reduce the violation: dual unbounded, primal
                // infeasible.
                return DualResult::Infeasible;
            };

            let w = self.ftran(q);
            let alpha_r = w[r];
            let rate = -sigma * alpha_r;
            if rate.abs() <= PIVOT_TOL {
                return DualResult::Stalled;
            }
            let t_needed = delta_r / rate;
            let own_range = self.upper[q] - self.lower[q];
            self.iterations += 1;
            if t_needed > own_range {
                // Entering variable hits its opposite bound first: bound
                // flip; the violated row stays leaving next iteration.
                let t = own_range;
                for i in 0..m {
                    self.xb[i] += -sigma * w[i] * t;
                }
                let new_state = match self.state[q] {
                    VarState::AtLower => VarState::AtUpper,
                    VarState::AtUpper => VarState::AtLower,
                    VarState::Basic(_) => return DualResult::Stalled,
                };
                self.state[q] = new_state;
                self.xn[q] = match new_state {
                    VarState::AtLower => self.lower[q],
                    VarState::AtUpper => self.upper[q],
                    VarState::Basic(_) => return DualResult::Stalled,
                };
                continue;
            }
            let t = t_needed;
            let entering_value = self.xn[q] + sigma * t;
            for i in 0..m {
                self.xb[i] += -sigma * w[i] * t;
            }
            let leaving_var = self.basis[r];
            self.state[leaving_var] = if target == self.upper[leaving_var] {
                VarState::AtUpper
            } else {
                VarState::AtLower
            };
            self.xn[leaving_var] = target;
            let piv = w[r];
            if piv.abs() < PIVOT_TOL {
                self.refactorize();
                self.recompute_xb();
                return DualResult::Stalled;
            }
            let pivot_row: Vec<f64> = (0..m).map(|k| self.binv[r * m + k] / piv).collect();
            for i in 0..m {
                if i == r {
                    continue;
                }
                let f = w[i];
                if f != 0.0 {
                    for k in 0..m {
                        self.binv[i * m + k] -= f * pivot_row[k];
                    }
                }
            }
            self.binv[r * m..(r + 1) * m].copy_from_slice(&pivot_row);
            self.basis[r] = q;
            self.state[q] = VarState::Basic(r);
            self.xb[r] = entering_value;
            self.pivots_since_refactor += 1;
            if self.pivots_since_refactor >= REFACTOR_EVERY {
                self.refactorize();
                self.recompute_xb();
            }
        }
    }

    fn recompute_xb(&mut self) {
        // x_B = Binv · (b − Σ_nonbasic A_j x_j).
        let mut adjusted = self.rhs.clone();
        for j in 0..self.cols.len() {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.xn[j];
            if xj != 0.0 {
                for (r, coef) in &self.cols[j] {
                    adjusted[*r] -= coef * xj;
                }
            }
        }
        for i in 0..self.m {
            let mut acc = 0.0;
            for (k, a) in adjusted.iter().enumerate() {
                acc += self.binv[i * self.m + k] * a;
            }
            self.xb[i] = acc;
        }
    }

    fn refactorize(&mut self) -> bool {
        // Rebuild Binv by inverting the basis matrix with Gauss-Jordan.
        let m = self.m;
        let mut a = vec![0.0; m * m];
        for (col_pos, &j) in self.basis.iter().enumerate() {
            for (r, coef) in &self.cols[j] {
                a[*r * m + col_pos] = *coef;
            }
        }
        let mut inv = identity(m);
        for col in 0..m {
            // Partial pivoting.
            let mut best = col;
            let mut best_abs = a[col * m + col].abs();
            for row in col + 1..m {
                let v = a[row * m + col].abs();
                if v > best_abs {
                    best_abs = v;
                    best = row;
                }
            }
            if best_abs < PIVOT_TOL {
                return false;
            }
            if best != col {
                for k in 0..m {
                    a.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let piv = a[col * m + col];
            for k in 0..m {
                a[col * m + k] /= piv;
                inv[col * m + k] /= piv;
            }
            for row in 0..m {
                if row == col {
                    continue;
                }
                let f = a[row * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        a[row * m + k] -= f * a[col * m + k];
                        inv[row * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
        // inv now maps original row space through the permuted elimination;
        // because we performed identical row ops on both, inv = B^{-1}.
        self.binv = inv;
        self.pivots_since_refactor = 0;
        true
    }

    /// `w = Binv · A_j` for column `j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, coef) in &self.cols[j] {
            for i in 0..self.m {
                w[i] += self.binv[i * self.m + *r] * coef;
            }
        }
        w
    }

    /// Dual values `y = c_B · Binv` for the given per-column costs.
    fn duals(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            if cb != 0.0 {
                for k in 0..self.m {
                    y[k] += cb * self.binv[i * self.m + k];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        let mut d = cost[j];
        for (r, coef) in &self.cols[j] {
            d -= y[*r] * coef;
        }
        d
    }

    /// Total bound infeasibility of the current basic solution.
    fn infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for (i, &j) in self.basis.iter().enumerate() {
            let x = self.xb[i];
            if x < self.lower[j] {
                total += self.lower[j] - x;
            } else if x > self.upper[j] {
                total += x - self.upper[j];
            }
        }
        total
    }

    /// Phase-1 costs: gradient of −(total infeasibility) w.r.t. basic vars.
    fn phase1_cost(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.cols.len()];
        for (i, &j) in self.basis.iter().enumerate() {
            let x = self.xb[i];
            if x < self.lower[j] - FEAS_TOL {
                c[j] = 1.0;
            } else if x > self.upper[j] + FEAS_TOL {
                c[j] = -1.0;
            }
        }
        c
    }

    /// One pricing-ratio-pivot step. Returns:
    /// * `Ok(true)` — step taken,
    /// * `Ok(false)` — no improving column (optimal for `cost`),
    /// * `Err(())` — unbounded in the improving direction.
    fn step(&mut self, cost: &[f64], bland: bool, phase1: bool) -> Result<bool, ()> {
        let y = self.duals(cost);
        // Pricing.
        let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
        for j in 0..self.cols.len() {
            let sigma = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            // A fixed variable (equal bounds) can never move.
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(j, cost, &y);
            let improving = if sigma > 0.0 {
                d > OPT_TOL
            } else {
                d < -OPT_TOL
            };
            if !improving {
                continue;
            }
            let score = d.abs();
            if bland {
                entering = Some((j, score, sigma));
                break;
            }
            if entering.is_none_or(|(_, s, _)| score > s) {
                entering = Some((j, score, sigma));
            }
        }
        let Some((q, _, sigma)) = entering else {
            return Ok(false);
        };

        let w = self.ftran(q);
        // Ratio test: the entering variable moves by t ≥ 0 in direction
        // sigma; basic row i changes at rate delta_i = −sigma·w_i.
        let own_range = self.upper[q] - self.lower[q];
        let mut t_max = own_range; // entering may flip to its other bound
        let mut leaving: Option<usize> = None;
        for i in 0..self.m {
            let delta = -sigma * w[i];
            if delta.abs() <= PIVOT_TOL {
                continue;
            }
            let j = self.basis[i];
            let x = self.xb[i];
            // The blocking bound is the nearest bound in the direction of
            // travel that the variable has not already crossed; a variable
            // that is currently infeasible blocks when it reaches
            // feasibility (composite phase-1 rule).
            let target = if delta > 0.0 {
                if x < self.lower[j] - FEAS_TOL {
                    self.lower[j]
                } else {
                    self.upper[j]
                }
            } else if x > self.upper[j] + FEAS_TOL {
                self.upper[j]
            } else {
                self.lower[j]
            };
            if !target.is_finite() {
                continue;
            }
            let ratio = ((target - x) / delta).max(0.0);
            let better = match leaving {
                None => ratio < t_max,
                Some(cur) => {
                    ratio < t_max - 1e-12 || (ratio < t_max + 1e-12 && bland && j < self.basis[cur])
                }
            };
            if better {
                t_max = ratio;
                leaving = Some(i);
            }
        }

        if !t_max.is_finite() {
            return if phase1 {
                // Phase 1 is always bounded (infeasibility ≥ 0); numerical
                // noise only — treat as no progress.
                Ok(false)
            } else {
                Err(())
            };
        }

        self.iterations += 1;
        match leaving {
            None => {
                // Bound flip: entering jumps to its opposite bound.
                let t = t_max;
                for i in 0..self.m {
                    self.xb[i] += -sigma * w[i] * t;
                }
                let new_state = match self.state[q] {
                    VarState::AtLower => VarState::AtUpper,
                    VarState::AtUpper => VarState::AtLower,
                    VarState::Basic(_) => unreachable!("entering var is nonbasic"),
                };
                self.state[q] = new_state;
                self.xn[q] = match new_state {
                    VarState::AtLower => self.lower[q],
                    VarState::AtUpper => self.upper[q],
                    VarState::Basic(_) => unreachable!(),
                };
                Ok(true)
            }
            Some(r) => {
                // Check the pivot element BEFORE mutating any state: bailing
                // out after the leaving variable has been marked nonbasic
                // (while `basis[r]` still holds it) leaves the tableau
                // inconsistent and pricing chases phantom columns forever.
                let piv = w[r];
                if piv.abs() < PIVOT_TOL {
                    // Numerically hopeless pivot; refactorise and retry later.
                    self.refactorize();
                    self.recompute_xb();
                    return Ok(true);
                }
                let t = t_max;
                let entering_value = self.xn[q] + sigma * t;
                for i in 0..self.m {
                    self.xb[i] += -sigma * w[i] * t;
                }
                let leaving_var = self.basis[r];
                // The leaving variable rests at whichever bound it hit.
                let x_leave = self.xb[r];
                let to_upper = (x_leave - self.upper[leaving_var]).abs()
                    <= (x_leave - self.lower[leaving_var]).abs();
                self.state[leaving_var] = if to_upper {
                    VarState::AtUpper
                } else {
                    VarState::AtLower
                };
                self.xn[leaving_var] = if to_upper {
                    self.upper[leaving_var]
                } else {
                    self.lower[leaving_var]
                };
                // Pivot: update Binv with the eta transformation.
                let m = self.m;
                let pivot_row: Vec<f64> = (0..m).map(|k| self.binv[r * m + k] / piv).collect();
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let f = w[i];
                    if f != 0.0 {
                        for k in 0..m {
                            self.binv[i * m + k] -= f * pivot_row[k];
                        }
                    }
                }
                self.binv[r * m..(r + 1) * m].copy_from_slice(&pivot_row);
                self.basis[r] = q;
                self.state[q] = VarState::Basic(r);
                self.xb[r] = entering_value;
                self.pivots_since_refactor += 1;
                if self.pivots_since_refactor >= REFACTOR_EVERY {
                    self.refactorize();
                    self.recompute_xb();
                }
                Ok(true)
            }
        }
    }

    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_structural];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = match self.state[j] {
                VarState::Basic(r) => self.xb[r],
                _ => self.xn[j],
            };
        }
        x
    }
}

fn identity(m: usize) -> Vec<f64> {
    let mut i = vec![0.0; m * m];
    for k in 0..m {
        i[k * m + k] = 1.0;
    }
    i
}

/// Solves the LP relaxation of `model` (integrality ignored).
pub fn solve_lp(model: &Model) -> LpSolution {
    solve_lp_with_bounds(model, None)
}

/// Solves the LP relaxation with per-variable bound overrides (used by
/// branch-and-bound node fixing; `bounds[j]` replaces variable `j`'s bounds).
pub fn solve_lp_with_bounds(model: &Model, bounds: Option<&[(f64, f64)]>) -> LpSolution {
    solve_lp_warm(model, bounds, None).0
}

/// Solves the LP relaxation, optionally reoptimising from a previous
/// [`Basis`] instead of the all-slack cold start.
///
/// When `warm` fits and is dual feasible for the current objective, primal
/// feasibility is restored by dual simplex (the textbook reoptimisation after
/// bound or rhs changes — exactly what branch-and-bound children and
/// cycle-over-cycle model diffs produce); otherwise the composite phase-1
/// runs from the installed basis, which still tends to be far closer to
/// optimal than the all-slack start. The returned basis snapshot seeds the
/// next solve. Warm and cold solves may finish on *different* optimal
/// vertices of a degenerate face, so callers that require bit-identical
/// results must not mix warm and cold paths (see DESIGN.md §9).
pub fn solve_lp_warm(
    model: &Model,
    bounds: Option<&[(f64, f64)]>,
    warm: Option<&Basis>,
) -> (LpSolution, Basis) {
    if let Some(b) = bounds {
        debug_assert_eq!(b.len(), model.num_vars());
        if b.iter().any(|(lo, hi)| lo > hi) {
            let t = Tableau::new(model, bounds);
            return (
                LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    iterations: 0,
                },
                t.snapshot(),
            );
        }
    }
    let mut t = Tableau::new(model, bounds);
    let iter_limit = 200 * (t.m + t.n_structural) + 2000;

    // Warm path: a pure accelerator. Either it finishes with a clean,
    // trustworthy outcome (optimal / unbounded / dual-proven infeasible), or
    // it gives up and the solve restarts below from the all-slack basis with
    // cold-start semantics — a clipped or drifted warm result never escapes,
    // so warm starts can only change *which* optimal vertex is reported,
    // never the solution quality (see DESIGN.md §9).
    if let Some(basis) = warm {
        if t.install(basis) {
            match warm_attempt(model, &mut t, iter_limit) {
                Some(sol) => {
                    let snapshot = t.snapshot();
                    return (sol, snapshot);
                }
                None => t.reset_cold(),
            }
        }
    }

    // Cold path. The budget is relative to the iterations already spent so
    // an abandoned warm attempt cannot starve the solve that actually
    // produces the answer.
    let budget = t.iterations + iter_limit;

    // Phase 1: drive infeasibility to zero with dynamically recomputed costs.
    let mut stall = 0usize;
    let mut last_inf = f64::INFINITY;
    while t.infeasibility() > FEAS_TOL {
        if t.iterations >= budget {
            let sol = LpSolution {
                outcome: LpOutcome::IterationLimit,
                objective: f64::NEG_INFINITY,
                values: t.extract(),
                iterations: t.iterations,
            };
            return (sol, t.snapshot());
        }
        let c1 = t.phase1_cost();
        let bland = stall > 2 * (t.m + 10);
        match t.step(&c1, bland, true) {
            Ok(true) => {
                let inf = t.infeasibility();
                if inf < last_inf - FEAS_TOL {
                    stall = 0;
                    last_inf = inf;
                } else {
                    stall += 1;
                }
            }
            Ok(false) => {
                let sol = LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    iterations: t.iterations,
                };
                return (sol, t.snapshot());
            }
            Err(()) => unreachable!("phase 1 reported unbounded"),
        }
    }

    // Phase 2: optimise the true objective from the feasible basis.
    let cost = t.cost.clone();
    let mut stall = 0usize;
    let mut last_obj = f64::NEG_INFINITY;
    loop {
        if t.iterations >= budget {
            let values = t.extract();
            let objective = model.objective_value(&values);
            let sol = LpSolution {
                outcome: LpOutcome::IterationLimit,
                objective,
                values,
                iterations: t.iterations,
            };
            return (sol, t.snapshot());
        }
        let bland = stall > 2 * (t.m + 10);
        match t.step(&cost, bland, false) {
            Ok(true) => {
                let obj = model.objective_value(&t.extract());
                if obj > last_obj + OPT_TOL {
                    stall = 0;
                    last_obj = obj;
                } else {
                    stall += 1;
                }
                // Phase-1 invariant can be perturbed by numerical noise;
                // re-enter phase 1 if feasibility degraded materially.
                if t.infeasibility() > 1e3 * FEAS_TOL {
                    t.refactorize();
                    t.recompute_xb();
                    if t.infeasibility() > 1e3 * FEAS_TOL {
                        let c1 = t.phase1_cost();
                        let _ = t.step(&c1, false, true);
                    }
                }
            }
            Ok(false) => {
                let values = t.extract();
                let objective = model.objective_value(&values);
                let sol = LpSolution {
                    outcome: LpOutcome::Optimal,
                    objective,
                    values,
                    iterations: t.iterations,
                };
                return (sol, t.snapshot());
            }
            Err(()) => {
                let sol = LpSolution {
                    outcome: LpOutcome::Unbounded,
                    objective: f64::INFINITY,
                    values: t.extract(),
                    iterations: t.iterations,
                };
                return (sol, t.snapshot());
            }
        }
    }
}

/// Runs the warm-start fast path from an installed basis: dual-simplex
/// reoptimisation, then tightly-capped primal cleanup. Returns `Some` only
/// for clean terminal outcomes (optimal, unbounded, or dual-proven
/// infeasible); `None` means the basis led into degenerate cycling or
/// numerical drift and the caller must redo the solve from the all-slack
/// basis — so a warm start can never degrade solution quality, it can only
/// pick a different optimal vertex or waste its bounded effort budget.
fn warm_attempt(model: &Model, t: &mut Tableau, iter_limit: usize) -> Option<LpSolution> {
    let cost = t.cost.clone();
    if t.dual_feasible(&cost) {
        // Dual reoptimisation normally needs a handful of pivots (one per
        // changed bound), but on degenerate faces it can cycle — the leaving
        // rule has no anti-cycling guarantee. Cap its effort.
        let dual_budget = (t.iterations + 2 * t.m + 100).min(iter_limit);
        match t.dual_loop(&cost, dual_budget) {
            DualResult::Feasible => {}
            DualResult::Infeasible => {
                // Dual unboundedness proves primal infeasibility from any
                // starting basis.
                return Some(LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    iterations: t.iterations,
                });
            }
            DualResult::Stalled => return None,
        }
    }

    // Primal cleanup. The stall caps are deliberately tight: a warm basis
    // that needs a long degenerate primal phase is no better than a cold
    // start, and the cold path has the proven convergence behaviour.
    let cap = 4 * (t.m + 10);

    let mut stall = 0usize;
    let mut last_inf = f64::INFINITY;
    while t.infeasibility() > FEAS_TOL {
        if t.iterations >= iter_limit || stall > cap {
            return None;
        }
        let c1 = t.phase1_cost();
        let bland = stall > 2 * (t.m + 10);
        match t.step(&c1, bland, true) {
            Ok(true) => {
                let inf = t.infeasibility();
                if inf < last_inf - FEAS_TOL {
                    stall = 0;
                    last_inf = inf;
                } else {
                    stall += 1;
                }
            }
            // Phase-1 optimality with residual infeasibility is an
            // infeasibility certificate, but let the cold path confirm it
            // rather than trusting one derived from a reused basis.
            Ok(false) => return None,
            Err(()) => unreachable!("phase 1 reported unbounded"),
        }
    }

    let mut stall = 0usize;
    let mut last_obj = f64::NEG_INFINITY;
    loop {
        if t.iterations >= iter_limit || stall > cap {
            return None;
        }
        let bland = stall > 2 * (t.m + 10);
        match t.step(&cost, bland, false) {
            Ok(true) => {
                let obj = model.objective_value(&t.extract());
                if obj > last_obj + OPT_TOL {
                    stall = 0;
                    last_obj = obj;
                } else {
                    stall += 1;
                }
                // Reused bases drift more than cold ones; on material
                // infeasibility try one refactorisation, then hand the solve
                // back to the cold path rather than repairing in place.
                if t.infeasibility() > 1e3 * FEAS_TOL {
                    t.refactorize();
                    t.recompute_xb();
                    if t.infeasibility() > 1e3 * FEAS_TOL {
                        return None;
                    }
                }
            }
            Ok(false) => {
                if t.infeasibility() > FEAS_TOL {
                    // "Optimal" on a drifted, slightly infeasible point is
                    // not a clean outcome — redo cold.
                    return None;
                }
                let values = t.extract();
                let objective = model.objective_value(&values);
                return Some(LpSolution {
                    outcome: LpOutcome::Optimal,
                    objective,
                    values,
                    iterations: t.iterations,
                });
            }
            Err(()) => {
                return Some(LpSolution {
                    outcome: LpOutcome::Unbounded,
                    objective: f64::INFINITY,
                    values: t.extract(),
                    iterations: t.iterations,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn one_var_hits_its_upper_bound() {
        let mut m = Model::new();
        m.add_continuous(0.0, 4.0, 2.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 8.0);
        assert_near(s.values[0], 4.0);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 36.0);
        assert_near(s.values[0], 2.0);
        assert_near(s.values[1], 6.0);
    }

    #[test]
    fn equality_rows_force_phase_one() {
        // max x + y s.t. x + y = 5, x − y = 1 → (3, 2), obj 5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.values[0], 3.0);
        assert_near(s.values[1], 2.0);
    }

    #[test]
    fn ge_rows_are_respected() {
        // min x + 2y ≡ max −x − 2y s.t. x + y ≥ 4, y ≥ 1 → (3, 1), obj −5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint(&[(y, 1.0)], Cmp::Ge, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, -5.0);
        assert_near(s.values[0], 3.0);
        assert_near(s.values[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_work() {
        // max x s.t. x ∈ [−5, −2] → −2.
        let mut m = Model::new();
        m.add_continuous(-5.0, -2.0, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.values[0], -2.0);
    }

    #[test]
    fn nonzero_lower_bounds_feed_rows() {
        // max y s.t. x + y ≤ 10, x ≥ 4 (as bound) → y = 6.
        let mut m = Model::new();
        let x = m.add_continuous(4.0, f64::INFINITY, 0.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 6.0);
    }

    #[test]
    fn bound_overrides_replace_model_bounds() {
        let mut m = Model::new();
        m.add_continuous(0.0, 10.0, 1.0);
        let s = solve_lp_with_bounds(&m, Some(&[(0.0, 3.0)]));
        assert_near(s.objective, 3.0);
        let s = solve_lp_with_bounds(&m, Some(&[(5.0, 2.0)]));
        assert_eq!(s.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn degenerate_rows_terminate() {
        // Several redundant rows through the same vertex.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 2.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], Cmp::Le, 4.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 2.0);
        m.add_constraint(&[(y, 1.0)], Cmp::Le, 2.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 2.0);
    }

    #[test]
    fn fractional_lp_relaxation_of_knapsack() {
        // max 10a + 6b, 5a + 4b ≤ 7, binaries relaxed → a=1, b=0.5, obj 13.
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0)], Cmp::Le, 7.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 13.0);
        assert_near(s.values[0], 1.0);
        assert_near(s.values[1], 0.5);
    }

    #[test]
    fn fixed_variables_via_equal_bounds() {
        // x fixed at 2 by bounds; maximize y with x + y ≤ 5 → y = 3.
        let mut m = Model::new();
        let _x = m.add_continuous(2.0, 2.0, 0.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(_x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.values[0], 2.0);
        assert_near(s.values[1], 3.0);
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Model::new();
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn rows_without_variables_are_constants() {
        // 0 ≤ 1 is vacuous; 0 ≥ 1 is infeasible.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 0.0)], Cmp::Le, 1.0);
        assert_eq!(solve_lp(&m).outcome, LpOutcome::Optimal);
        let mut bad = Model::new();
        let y = bad.add_continuous(0.0, 1.0, 1.0);
        bad.add_constraint(&[(y, 0.0)], Cmp::Ge, 1.0);
        assert_eq!(solve_lp(&bad).outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn redundant_equalities_are_consistent() {
        // x + y = 4 twice, maximize x with x ≤ 3 → (3, 1).
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 0.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], Cmp::Eq, 8.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.values[0], 3.0);
        assert_near(s.values[1], 1.0);
    }

    #[test]
    fn conflicting_equalities_are_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Eq, 4.0);
        assert_eq!(solve_lp(&m).outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn transportation_style_lp() {
        // Two suppliers (cap 5, 7), two consumers (need 4, 6); minimise a
        // cost matrix — classic demand/capacity structure of 3σSched's
        // allocation subproblem.
        let mut m = Model::new();
        let costs = [[2.0, 3.0], [4.0, 1.0]];
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                x.push(m.add_continuous(0.0, f64::INFINITY, -costs[i][j]));
            }
        }
        m.add_constraint(&[(x[0], 1.0), (x[1], 1.0)], Cmp::Le, 5.0);
        m.add_constraint(&[(x[2], 1.0), (x[3], 1.0)], Cmp::Le, 7.0);
        m.add_constraint(&[(x[0], 1.0), (x[2], 1.0)], Cmp::Eq, 4.0);
        m.add_constraint(&[(x[1], 1.0), (x[3], 1.0)], Cmp::Eq, 6.0);
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        // Optimal: x00 = 4 (cost 8), x11 = 6 (cost 6) → total −14.
        assert_near(s.objective, -14.0);
    }

    #[test]
    fn large_diagonal_problem_is_fast_and_exact() {
        let mut m = Model::new();
        let n = 120;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_continuous(0.0, 1.0 + (i % 3) as f64, 1.0 + (i % 5) as f64))
            .collect();
        for (i, v) in vars.iter().enumerate() {
            m.add_constraint(&[(*v, 1.0)], Cmp::Le, 0.5 + (i % 2) as f64);
        }
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        let expected: f64 = (0..n)
            .map(|i| {
                let ub = (1.0 + (i % 3) as f64).min(0.5 + (i % 2) as f64);
                (1.0 + (i % 5) as f64) * ub
            })
            .sum();
        assert!((s.objective - expected).abs() < 1e-5);
    }

    #[test]
    fn solution_is_feasible_for_dense_random_problem() {
        // Deterministic pseudo-random LP; asserts feasibility and that the
        // reported objective matches the returned point.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut m = Model::new();
        let vars: Vec<_> = (0..12)
            .map(|_| m.add_continuous(0.0, 1.0 + 4.0 * next(), 2.0 * next() - 0.5))
            .collect();
        for _ in 0..8 {
            let terms: Vec<_> = vars.iter().map(|v| (*v, next())).collect();
            m.add_constraint(&terms, Cmp::Le, 2.0 + 3.0 * next());
        }
        let s = solve_lp(&m);
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert!(m.is_feasible(
            &s.values.iter().map(|v| v.max(0.0)).collect::<Vec<_>>(),
            1e-5
        ));
        assert_near(s.objective, m.objective_value(&s.values));
    }

    fn two_var_model() -> (Model, crate::model::VarId, crate::model::VarId) {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        (m, x, y)
    }

    #[test]
    fn warm_basis_reoptimises_after_bound_tightening() {
        let (m, _, _) = two_var_model();
        let (cold, basis) = solve_lp_warm(&m, None, None);
        assert_eq!(cold.outcome, LpOutcome::Optimal);
        // Tighten x ≤ 1 via bound overrides and reoptimise from the optimal
        // basis: dual simplex should need far fewer pivots than a cold solve
        // and land on the same optimum the cold path finds.
        let bounds = [(0.0, 1.0), (0.0, f64::INFINITY)];
        let (warm, _) = solve_lp_warm(&m, Some(&bounds), Some(&basis));
        let cold2 = solve_lp_with_bounds(&m, Some(&bounds));
        assert_eq!(warm.outcome, LpOutcome::Optimal);
        assert_near(warm.objective, cold2.objective);
        assert!(
            warm.iterations <= cold2.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold2.iterations
        );
    }

    #[test]
    fn warm_basis_detects_infeasibility_after_bound_change() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
        let (cold, basis) = solve_lp_warm(&m, None, None);
        assert_eq!(cold.outcome, LpOutcome::Optimal);
        // x ∈ [0, 2] conflicts with x ≥ 5: the dual loop must certify
        // infeasibility from the warm basis.
        let (warm, _) = solve_lp_warm(&m, Some(&[(0.0, 2.0)]), Some(&basis));
        assert_eq!(warm.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn incompatible_basis_falls_back_to_cold_start() {
        let (m, _, _) = two_var_model();
        let (_, basis) = solve_lp_warm(&m, None, None);
        // A different model shape must ignore the stale snapshot entirely.
        let mut other = Model::new();
        other.add_continuous(0.0, 4.0, 2.0);
        assert!(!basis.fits(other.num_vars(), other.num_constraints()));
        let (s, _) = solve_lp_warm(&other, None, Some(&basis));
        assert_eq!(s.outcome, LpOutcome::Optimal);
        assert_near(s.objective, 8.0);
    }

    #[test]
    fn warm_basis_roundtrip_matches_on_identical_model() {
        let (m, _, _) = two_var_model();
        let (cold, basis) = solve_lp_warm(&m, None, None);
        // Re-solving the identical model from its own optimal basis is a
        // no-pivot dual/primal pass at the same vertex.
        let (warm, _) = solve_lp_warm(&m, None, Some(&basis));
        assert_eq!(warm.outcome, LpOutcome::Optimal);
        assert_near(warm.objective, cold.objective);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            assert_near(*a, *b);
        }
        assert_eq!(warm.iterations, 0, "optimal basis needs no pivots");
    }

    #[test]
    fn warm_basis_survives_random_bound_flips() {
        // Fuzz warm-vs-cold agreement across random bound overrides of a
        // dense LP: objectives must agree to tolerance at every step.
        let mut seed = 0xabcdef1234567890u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut m = Model::new();
        let vars: Vec<_> = (0..10)
            .map(|_| m.add_continuous(0.0, 2.0 + 2.0 * next(), next() * 3.0 - 0.5))
            .collect();
        for _ in 0..6 {
            let terms: Vec<_> = vars.iter().map(|v| (*v, next())).collect();
            m.add_constraint(&terms, Cmp::Le, 2.0 + 2.0 * next());
        }
        let (_, mut basis) = solve_lp_warm(&m, None, None);
        for _ in 0..12 {
            let bounds: Vec<(f64, f64)> = (0..vars.len())
                .map(|j| {
                    if next() < 0.3 {
                        (0.0, next())
                    } else {
                        (0.0, m.vars[j].upper)
                    }
                })
                .collect();
            let (warm, next_basis) = solve_lp_warm(&m, Some(&bounds), Some(&basis));
            let cold = solve_lp_with_bounds(&m, Some(&bounds));
            assert_eq!(warm.outcome, cold.outcome);
            if warm.outcome == LpOutcome::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-6,
                    "warm {} vs cold {}",
                    warm.objective,
                    cold.objective
                );
            }
            basis = next_basis;
        }
    }
}
