//! Equivalence-preserving model reduction shared by every solver tier.
//!
//! Three deterministic transformations run to a fixpoint before the simplex
//! matrix is ever built:
//!
//! 1. **Bound tightening** — constant and singleton rows become variable
//!    bounds (rounded inward for binaries) and are dropped.
//! 2. **Fixed-variable elimination** — variables whose bounds have collapsed
//!    are substituted into every row and the objective (tracked as an
//!    objective offset) and removed from the column space.
//! 3. **Dominated-option removal** — inside an SOS1 group protected by its
//!    `Σ ≤ 1` demand row, an option that is *strictly* worse than a
//!    groupmate in the objective and no less constraining in *every* row it
//!    touches can be fixed to zero: swapping it for the dominator strictly
//!    improves any solution using it, so it appears in no optimal solution.
//!
//! Every transformation preserves the optimal objective value and every
//! eliminated variable has a recorded assignment, so a reduced-space solution
//! restores to a full-space one via [`Presolve::restore`]. Reductions iterate
//! in index order only — the pass is bit-deterministic.

use crate::model::{Cmp, Model, VarKind};

/// Feasibility slack used when a row collapses to a constant.
const TOL: f64 = 1e-9;

/// Counts of what a presolve pass removed (mirrored into
/// [`crate::MipSolution`] so schedulers can export them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Variables eliminated because their bounds collapsed to a point.
    pub fixed_vars: usize,
    /// Constant and singleton rows absorbed into bounds.
    pub rows_removed: usize,
    /// SOS1 options fixed to zero by strict domination.
    pub dominated: usize,
    /// Variable bounds tightened by singleton rows.
    pub bounds_tightened: usize,
}

impl PresolveStats {
    /// Sum of all reductions — zero means presolve was a no-op.
    pub fn total(&self) -> usize {
        self.fixed_vars + self.rows_removed + self.dominated + self.bounds_tightened
    }
}

/// Where each original variable went.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// Kept, at this column index in the reduced model.
    Kept(usize),
    /// Eliminated at this value.
    Fixed(f64),
}

/// The result of presolving a [`Model`]: the reduced model plus the mapping
/// back to the original variable space.
#[derive(Debug, Clone)]
pub struct Presolve {
    reduced: Model,
    map: Vec<VarMap>,
    offset: f64,
    infeasible: bool,
    stats: PresolveStats,
}

/// Working row representation during reduction.
struct WorkRow {
    terms: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
    removed: bool,
}

impl Presolve {
    /// Runs the presolve passes on `model`.
    pub fn run(model: &Model) -> Presolve {
        let n = model.num_vars();
        let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
        let kinds: Vec<VarKind> = model.vars.iter().map(|v| v.kind).collect();
        let objective: Vec<f64> = model.vars.iter().map(|v| v.objective).collect();
        let mut rows: Vec<WorkRow> = model
            .constraints
            .iter()
            .map(|c| WorkRow {
                terms: c.terms.clone(),
                cmp: c.cmp,
                rhs: c.rhs,
                removed: false,
            })
            .collect();
        let mut stats = PresolveStats::default();
        let mut infeasible = false;
        // A variable is "absorbed" once its fixed value has been substituted
        // into the rows; its (equal) bounds carry the value.
        let mut absorbed = vec![false; n];

        let fixpoint = |lower: &mut Vec<f64>,
                        upper: &mut Vec<f64>,
                        rows: &mut Vec<WorkRow>,
                        absorbed: &mut Vec<bool>,
                        stats: &mut PresolveStats|
         -> bool {
            // Alternate bound tightening and fixed-variable substitution
            // until neither changes anything (bounded pass count for
            // safety; real models settle in two or three).
            for _pass in 0..16 {
                let mut changed = false;
                for row in rows.iter_mut() {
                    if row.removed {
                        continue;
                    }
                    if row.terms.is_empty() {
                        // Constant row: feasible or the whole model dies.
                        let ok = match row.cmp {
                            Cmp::Le => 0.0 <= row.rhs + TOL,
                            Cmp::Ge => 0.0 >= row.rhs - TOL,
                            Cmp::Eq => row.rhs.abs() <= TOL,
                        };
                        if !ok {
                            return false;
                        }
                        row.removed = true;
                        stats.rows_removed += 1;
                        changed = true;
                        continue;
                    }
                    if row.terms.len() == 1 {
                        let (j, a) = row.terms[0];
                        if a == 0.0 || a.is_nan() || row.rhs.is_nan() {
                            continue;
                        }
                        let bound = row.rhs / a;
                        // a·x ≤ rhs tightens an upper bound when a > 0 and a
                        // lower bound when a < 0 (mirrored for ≥; = does
                        // both).
                        let (new_lo, new_hi) = match (row.cmp, a > 0.0) {
                            (Cmp::Le, true) | (Cmp::Ge, false) => (f64::NEG_INFINITY, bound),
                            (Cmp::Le, false) | (Cmp::Ge, true) => (bound, f64::INFINITY),
                            (Cmp::Eq, _) => (bound, bound),
                        };
                        let mut lo = lower[j].max(new_lo);
                        let mut hi = upper[j].min(new_hi);
                        if kinds[j] == VarKind::Binary {
                            // Round inward WITHOUT clamping to {0, 1}: a bound
                            // like `I ≥ 2` must stay visible as infeasible.
                            // `+ 0.0` normalises a `-0.0` from `ceil`.
                            lo = (lo - 1e-6).ceil() + 0.0;
                            hi = (hi + 1e-6).floor() + 0.0;
                        }
                        if lo > hi + TOL {
                            return false;
                        }
                        // Guard against an inverted continuous interval from
                        // rounding: collapse to the midpoint-free exact fix.
                        if lo > hi {
                            hi = lo;
                        }
                        if lo > lower[j] || hi < upper[j] {
                            stats.bounds_tightened += 1;
                        }
                        lower[j] = lo;
                        upper[j] = hi;
                        row.removed = true;
                        stats.rows_removed += 1;
                        changed = true;
                        continue;
                    }
                }
                // Substitute any newly fixed variables into the live rows.
                for j in 0..n {
                    if absorbed[j] || lower[j] != upper[j] || lower[j].is_nan() {
                        continue;
                    }
                    let value = lower[j];
                    for row in rows.iter_mut() {
                        if row.removed {
                            continue;
                        }
                        if let Some(pos) = row.terms.iter().position(|(k, _)| *k == j) {
                            let (_, coef) = row.terms.remove(pos);
                            row.rhs -= coef * value;
                        }
                    }
                    absorbed[j] = true;
                    changed = true;
                }
                if !changed {
                    break;
                }
            }
            true
        };

        if !fixpoint(&mut lower, &mut upper, &mut rows, &mut absorbed, &mut stats) {
            infeasible = true;
        }

        // Dominated-option removal, then another fixpoint to absorb the
        // zero-fixed options.
        if !infeasible {
            let dominated = dominated_options(model, &lower, &upper, &rows);
            if !dominated.is_empty() {
                for j in dominated {
                    upper[j] = 0.0;
                    stats.dominated += 1;
                }
                if !fixpoint(&mut lower, &mut upper, &mut rows, &mut absorbed, &mut stats) {
                    infeasible = true;
                }
            }
        }

        // Materialise the reduced model.
        let mut map = vec![VarMap::Fixed(0.0); n];
        let mut reduced = Model::new();
        let mut offset = 0.0;
        let mut fixed_vars = 0usize;
        for j in 0..n {
            if absorbed[j] {
                let value = lower[j];
                map[j] = VarMap::Fixed(value);
                offset += objective[j] * value;
                fixed_vars += 1;
                continue;
            }
            let idx = reduced.num_vars();
            map[j] = VarMap::Kept(idx);
            match kinds[j] {
                VarKind::Binary => {
                    let v = reduced.add_binary(objective[j]);
                    // Tightened-but-not-collapsed binary bounds survive the
                    // rebuild (e.g. a [1, 1] pair is absorbed above, so only
                    // genuine [0, 1] binaries reach here).
                    reduced.set_bounds(v, lower[j], upper[j]);
                }
                VarKind::Continuous => {
                    reduced.add_continuous(lower[j], upper[j], objective[j]);
                }
            }
        }
        stats.fixed_vars = fixed_vars;
        if !infeasible {
            for row in &rows {
                if row.removed {
                    continue;
                }
                if row.terms.is_empty() {
                    let ok = match row.cmp {
                        Cmp::Le => 0.0 <= row.rhs + TOL,
                        Cmp::Ge => 0.0 >= row.rhs - TOL,
                        Cmp::Eq => row.rhs.abs() <= TOL,
                    };
                    if !ok {
                        infeasible = true;
                        break;
                    }
                    continue;
                }
                let terms: Vec<(crate::model::VarId, f64)> = row
                    .terms
                    .iter()
                    .map(|(j, coef)| match map[*j] {
                        VarMap::Kept(idx) => (crate::model::VarId(idx), *coef),
                        VarMap::Fixed(_) => unreachable!("fixed vars were substituted"),
                    })
                    .collect();
                reduced.add_constraint(&terms, row.cmp, row.rhs);
            }
            for group in &model.sos1 {
                let members: Vec<crate::model::VarId> = group
                    .iter()
                    .filter_map(|j| match map[*j] {
                        VarMap::Kept(idx) => Some(crate::model::VarId(idx)),
                        VarMap::Fixed(_) => None,
                    })
                    .collect();
                reduced.add_sos1(&members);
            }
        }

        Presolve {
            reduced,
            map,
            offset,
            infeasible,
            stats,
        }
    }

    /// The reduced model (empty when [`Presolve::is_infeasible`]).
    pub fn reduced(&self) -> &Model {
        &self.reduced
    }

    /// True when presolve proved the original model infeasible.
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Objective contribution of the eliminated variables; add to a
    /// reduced-space objective to recover the full-space one.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// What presolve removed.
    pub fn stats(&self) -> PresolveStats {
        self.stats
    }

    /// Maps a reduced-space assignment back to the original variable space;
    /// eliminated variables take their recorded fixed values.
    pub fn restore(&self, reduced_values: &[f64]) -> Vec<f64> {
        self.map
            .iter()
            .map(|m| match m {
                VarMap::Kept(idx) => reduced_values.get(*idx).copied().unwrap_or(0.0),
                VarMap::Fixed(v) => *v,
            })
            .collect()
    }

    /// Projects a full-space warm start into the reduced space (fixed
    /// entries are dropped; the solver repairs any conflict with a fix the
    /// same way it repairs any other infeasible seed).
    pub fn project_warm(&self, warm: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.reduced.num_vars()];
        for (j, m) in self.map.iter().enumerate() {
            if let VarMap::Kept(idx) = m {
                if let Some(v) = warm.get(j) {
                    out[*idx] = *v;
                }
            }
        }
        out
    }
}

/// Finds SOS1 members that are strictly dominated by a groupmate.
///
/// Domination is only sound when the group carries its `Σ members ≤ 1`
/// demand row (the scheduler always emits one): swapping a used dominated
/// option `b` for its dominator `a` is then guaranteed not to collide with
/// `a` already being selected. `a` dominates `b` when `obj(a) > obj(b)`
/// **strictly** and in every live row `a`'s coefficient is no more
/// constraining than `b`'s (`≤` for `Le`, `≥` for `Ge`, `=` for `Eq`).
///
/// Strictness is load-bearing: with `obj(a) > obj(b)` the swap improves any
/// solution using `b`, so `b` appears in *no* optimal solution and removing
/// it preserves the optimal solution **set**, not just the optimal value.
/// An objective tie would preserve the value but could flip which
/// assignment the solver returns — and callers (the scheduler reads the
/// chosen option's placement mask off the assignment) care about the
/// solution itself, so ties are never removed. The dominator must also
/// belong to no other SOS1 group: a second, branching-enforced group could
/// make the swap infeasible without any row revealing it.
fn dominated_options(model: &Model, lower: &[f64], upper: &[f64], rows: &[WorkRow]) -> Vec<usize> {
    let n = model.num_vars();
    // Per-variable row membership with coefficients, for live rows only.
    // Rows are visited in index order, so each list is sorted by row; a
    // duplicate term in one row keeps its first coefficient.
    let mut occurs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (r, row) in rows.iter().enumerate() {
        if row.removed {
            continue;
        }
        for (j, coef) in &row.terms {
            if occurs[*j].last().is_none_or(|(last, _)| *last != r) {
                occurs[*j].push((r, *coef));
            }
        }
    }
    let mut out = Vec::new();
    let mut gone = vec![false; n];
    // SOS1 membership counts: a dominator gets set to 1 by the swap, which
    // could violate a second (row-less, branching-enforced) group.
    let mut membership = vec![0usize; n];
    for group in &model.sos1 {
        for &j in group {
            membership[j] += 1;
        }
    }
    for group in &model.sos1 {
        // Only groups protected by their demand row qualify.
        let has_demand_row = rows.iter().any(|row| {
            !row.removed
                && row.cmp == Cmp::Le
                && (row.rhs - 1.0).abs() <= TOL
                && row.terms.len() == group.len()
                && row
                    .terms
                    .iter()
                    .all(|(j, c)| (*c - 1.0).abs() <= TOL && group.contains(j))
        });
        if !has_demand_row {
            continue;
        }
        let free =
            |j: usize| model.vars[j].kind == VarKind::Binary && lower[j] <= 0.0 && upper[j] >= 1.0;
        for &b in group {
            if gone[b] || !free(b) {
                continue;
            }
            'dominators: for &a in group {
                if a == b || gone[a] || !free(a) || membership[a] != 1 {
                    continue;
                }
                let oa = model.vars[a].objective;
                let ob = model.vars[b].objective;
                // Strict improvement only; NaN-safe (unordered never
                // dominates). See the function doc for why a tie must
                // keep both options alive.
                if oa <= ob || oa.is_nan() || ob.is_nan() {
                    continue;
                }
                // Every live row touching either variable must prefer `a`.
                // Both occurrence lists are sorted by row, so a single
                // merge-walk visits each touched row once (an absent
                // variable contributes coefficient 0).
                let (la, lb) = (&occurs[a], &occurs[b]);
                let (mut ia, mut ib) = (0usize, 0usize);
                while ia < la.len() || ib < lb.len() {
                    let ra = la.get(ia).map_or(usize::MAX, |(r, _)| *r);
                    let rb = lb.get(ib).map_or(usize::MAX, |(r, _)| *r);
                    let r = ra.min(rb);
                    let mut ca = 0.0;
                    let mut cb = 0.0;
                    if ra == r {
                        ca = la[ia].1;
                        ia += 1;
                    }
                    if rb == r {
                        cb = lb[ib].1;
                        ib += 1;
                    }
                    let ok = match rows[r].cmp {
                        Cmp::Le => ca <= cb,
                        Cmp::Ge => ca >= cb,
                        Cmp::Eq => ca == cb,
                    };
                    if !ok {
                        continue 'dominators;
                    }
                }
                gone[b] = true;
                out.push(b);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    #[test]
    fn singleton_rows_become_bounds() {
        // x ≤ 3 as a row collapses into the bound and the row disappears.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 3.0);
        let p = Presolve::run(&m);
        assert!(!p.is_infeasible());
        assert_eq!(p.reduced().num_constraints(), 0);
        assert_eq!(p.reduced().num_vars(), 1);
        assert_eq!(p.stats().rows_removed, 1);
        assert_eq!(p.stats().bounds_tightened, 1);
    }

    #[test]
    fn binary_singleton_rounds_inward_and_fixes() {
        // I ≥ 0.4 with I binary means I = 1; the variable is eliminated.
        let mut m = Model::new();
        let i = m.add_binary(5.0);
        m.add_constraint(&[(i, 1.0)], Cmp::Ge, 0.4);
        let p = Presolve::run(&m);
        assert!(!p.is_infeasible());
        assert_eq!(p.reduced().num_vars(), 0);
        assert_eq!(p.offset(), 5.0);
        let restored = p.restore(&[]);
        assert_eq!(restored, vec![1.0]);
    }

    #[test]
    fn conflicting_singletons_prove_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Ge, 7.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 3.0);
        assert!(Presolve::run(&m).is_infeasible());
    }

    #[test]
    fn binary_above_one_is_infeasible() {
        let mut m = Model::new();
        let i = m.add_binary(1.0);
        m.add_constraint(&[(i, 1.0)], Cmp::Ge, 2.0);
        assert!(Presolve::run(&m).is_infeasible());
    }

    #[test]
    fn fixed_variable_substitutes_into_rows() {
        // x fixed at 2 by equal bounds; x + y ≤ 5 becomes y ≤ 3.
        let mut m = Model::new();
        let x = m.add_continuous(2.0, 2.0, 3.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let p = Presolve::run(&m);
        assert!(!p.is_infeasible());
        assert_eq!(p.reduced().num_vars(), 1);
        assert_eq!(p.offset(), 6.0);
        let restored = p.restore(&[3.0]);
        assert_eq!(restored, vec![2.0, 3.0]);
    }

    #[test]
    fn dominated_option_is_fixed_to_zero() {
        // Two options of one job: equal capacity use, worse utility → the
        // weaker one is dominated and eliminated.
        let mut m = Model::new();
        let a = m.add_binary(5.0);
        let b = m.add_binary(3.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&[a, b]);
        m.add_constraint(&[(a, 2.0), (b, 2.0)], Cmp::Le, 4.0);
        let p = Presolve::run(&m);
        assert!(!p.is_infeasible());
        assert_eq!(p.stats().dominated, 1);
        let restored = p.restore(&vec![0.0; p.reduced().num_vars()]);
        assert_eq!(restored[b.index()], 0.0);
    }

    #[test]
    fn cheaper_capacity_does_not_dominate() {
        // b uses less capacity than a, so neither dominates: b survives.
        let mut m = Model::new();
        let a = m.add_binary(5.0);
        let b = m.add_binary(3.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&[a, b]);
        m.add_constraint(&[(a, 3.0), (b, 1.0)], Cmp::Le, 4.0);
        let p = Presolve::run(&m);
        assert_eq!(p.stats().dominated, 0);
    }

    #[test]
    fn exact_ties_are_never_removed() {
        // Equal objective and equal rows: removing either side would
        // preserve the optimal value but shrink the optimal solution set —
        // callers read the assignment, so both options must survive.
        let mut m = Model::new();
        let a = m.add_binary(4.0);
        let b = m.add_binary(4.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&[a, b]);
        let p = Presolve::run(&m);
        assert_eq!(p.stats().dominated, 0);
        assert_eq!(p.reduced().num_vars(), 2);
    }

    #[test]
    fn dominator_in_a_second_sos1_group_is_disqualified() {
        // `a` strictly beats `b`, but `a` also sits in another SOS1 group
        // with no demand row: the swap b→a could violate that group via
        // branching alone, so nothing may be removed.
        let mut m = Model::new();
        let a = m.add_binary(5.0);
        let b = m.add_binary(3.0);
        let c = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&[a, b]);
        m.add_sos1(&[a, c]);
        let p = Presolve::run(&m);
        assert_eq!(p.stats().dominated, 0);
    }

    #[test]
    fn domination_requires_the_demand_row() {
        // Same shape but no Σ ≤ 1 row: the swap argument doesn't hold, so
        // nothing may be removed.
        let mut m = Model::new();
        let a = m.add_binary(5.0);
        let b = m.add_binary(3.0);
        m.add_sos1(&[a, b]);
        m.add_constraint(&[(a, 2.0), (b, 2.0)], Cmp::Le, 4.0);
        let p = Presolve::run(&m);
        assert_eq!(p.stats().dominated, 0);
    }

    #[test]
    fn constant_rows_check_feasibility() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 0.0)], Cmp::Le, 1.0);
        assert!(!Presolve::run(&m).is_infeasible());
        let mut bad = Model::new();
        let y = bad.add_continuous(0.0, 1.0, 1.0);
        bad.add_constraint(&[(y, 0.0)], Cmp::Ge, 1.0);
        assert!(Presolve::run(&bad).is_infeasible());
    }

    #[test]
    fn warm_start_projection_drops_fixed_entries() {
        let mut m = Model::new();
        let _x = m.add_continuous(2.0, 2.0, 0.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(_x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let p = Presolve::run(&m);
        let projected = p.project_warm(&[2.0, 7.5]);
        assert_eq!(projected, vec![7.5]);
    }

    #[test]
    fn noop_presolve_keeps_the_model_intact() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(2.0);
        m.add_constraint(&[(a, 2.0), (b, 3.0)], Cmp::Le, 4.0);
        let p = Presolve::run(&m);
        assert_eq!(p.stats().total(), 0);
        assert_eq!(p.reduced().num_vars(), 2);
        assert_eq!(p.reduced().num_constraints(), 1);
        assert_eq!(p.offset(), 0.0);
    }
}
