//! Cycle-to-cycle incremental solving.
//!
//! A scheduling cycle's MILP usually resembles the previous cycle's: the
//! same jobs, the same options, slightly different capacities. This module
//! wraps the tier-2 backend with a diff of the cycle-N model against
//! cycle-N−1 and short-circuits the provably-identical case.
//!
//! The reuse contract is deliberately narrow so that the scheduler's
//! byte-identity guarantee survives (DESIGN.md §9): a cached solution is
//! returned **only** when the model, warm start, and budgets are bit-for-bit
//! identical to the previous solve *and* the cached terminal state is
//! deterministic — `Optimal`, or `Feasible` cut off by the *node* budget.
//! Both are pure functions of (model, warm start, config), so a fresh
//! rebuild is guaranteed to reproduce them bit-for-bit. A **timed-out**
//! solve is the one outcome that is not: it depends on the wall clock, so
//! caching it would leak a machine-dependent result into a later cycle.
//! Anything dirty — changed coefficients, a timed-out cached result —
//! re-solves from scratch, where the branch-and-bound tree already
//! reoptimises every node LP via dual simplex from its parent's basis.
//! Classifying non-identical diffs ([`ModelDiff`]) is exported for
//! observability and for the differential solver-oracle suite, not used to
//! cut corners.

use crate::branch::{BranchAndBound, MipSolution, MipStatus, SolverConfig};
use crate::model::Model;
use crate::tiers::Solver;

/// How a model differs from the previous cycle's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDiff {
    /// Bit-for-bit the same model.
    Identical,
    /// Same structure; only objective coefficients changed.
    ObjectiveOnly,
    /// Same structure; only row right-hand sides changed.
    RhsOnly,
    /// Same structure; only variable bounds changed.
    BoundsOnly,
    /// Same structure; several coefficient classes changed.
    Mixed,
    /// Different variables, rows, sparsity pattern, or SOS1 groups.
    Structural,
}

/// Compares two models bit-exactly and classifies the difference.
pub fn diff_models(prev: &Model, next: &Model) -> ModelDiff {
    if prev.num_vars() != next.num_vars()
        || prev.num_constraints() != next.num_constraints()
        || prev.sos1 != next.sos1
    {
        return ModelDiff::Structural;
    }
    let mut objective = false;
    let mut bounds = false;
    let mut rhs = false;
    for (a, b) in prev.vars.iter().zip(&next.vars) {
        if a.kind != b.kind {
            return ModelDiff::Structural;
        }
        if a.objective.to_bits() != b.objective.to_bits() {
            objective = true;
        }
        if a.lower.to_bits() != b.lower.to_bits() || a.upper.to_bits() != b.upper.to_bits() {
            bounds = true;
        }
    }
    for (a, b) in prev.constraints.iter().zip(&next.constraints) {
        if a.cmp != b.cmp || a.terms.len() != b.terms.len() {
            return ModelDiff::Structural;
        }
        for ((ja, ca), (jb, cb)) in a.terms.iter().zip(&b.terms) {
            if ja != jb {
                return ModelDiff::Structural;
            }
            if ca.to_bits() != cb.to_bits() {
                // A body-coefficient change reshapes the constraint matrix.
                return ModelDiff::Structural;
            }
        }
        if a.rhs.to_bits() != b.rhs.to_bits() {
            rhs = true;
        }
    }
    match (objective, bounds, rhs) {
        (false, false, false) => ModelDiff::Identical,
        (true, false, false) => ModelDiff::ObjectiveOnly,
        (false, true, false) => ModelDiff::BoundsOnly,
        (false, false, true) => ModelDiff::RhsOnly,
        _ => ModelDiff::Mixed,
    }
}

/// Counters describing what the incremental wrapper did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Total `solve_with_warm_start` calls.
    pub solves: u64,
    /// Calls answered from the previous cycle's cached solution.
    pub reuses: u64,
    /// Calls classified as same-structure (a re-solve still ran).
    pub same_structure: u64,
    /// Calls classified as structural changes.
    pub structural: u64,
}

struct CacheEntry {
    model: Model,
    warm: Option<Vec<f64>>,
    solution: MipSolution,
}

/// Tier-2 branch-and-bound with cycle-over-cycle memoization.
pub struct IncrementalSolver {
    inner: BranchAndBound,
    cache: Option<CacheEntry>,
    stats: IncrementalStats,
    last_diff: Option<ModelDiff>,
}

impl IncrementalSolver {
    /// Incremental wrapper with default budgets.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Incremental wrapper with explicit budgets.
    pub fn with_config(config: SolverConfig) -> Self {
        Self {
            inner: BranchAndBound::with_config(config),
            cache: None,
            stats: IncrementalStats::default(),
            last_diff: None,
        }
    }

    /// What the wrapper has reused/re-solved so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Classification of the most recent solve's model vs its predecessor.
    pub fn last_diff(&self) -> Option<ModelDiff> {
        self.last_diff
    }

    /// Drops the cached previous cycle (e.g. after a config change).
    pub fn reset(&mut self) {
        self.cache = None;
        self.last_diff = None;
    }

    /// True when a terminal state is a pure function of the solve's inputs
    /// and therefore safe to replay: a wall-clock timeout is the only
    /// machine-dependent outcome.
    fn reusable(solution: &MipSolution) -> bool {
        matches!(solution.status, MipStatus::Optimal | MipStatus::Feasible) && !solution.timed_out
    }

    fn warm_matches(cached: &Option<Vec<f64>>, warm: Option<&[f64]>) -> bool {
        match (cached, warm) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver for IncrementalSolver {
    fn tier(&self) -> u8 {
        2
    }
    fn name(&self) -> &'static str {
        "branch-and-bound-incremental"
    }
    fn solve_with_warm_start(&mut self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        self.stats.solves += 1;
        let diff = self
            .cache
            .as_ref()
            .map(|c| diff_models(&c.model, model))
            .unwrap_or(ModelDiff::Structural);
        self.last_diff = Some(diff);
        match diff {
            ModelDiff::Structural => self.stats.structural += 1,
            _ => self.stats.same_structure += 1,
        }
        if diff == ModelDiff::Identical {
            if let Some(cache) = &self.cache {
                // Reuse demands bit-identical inputs AND a deterministic
                // cached terminal state. Optimal and node-budget Feasible
                // qualify (pure functions of the inputs); a timed-out solve
                // does not — its status depends on the wall clock and must
                // never leak into a later cycle.
                if Self::warm_matches(&cache.warm, warm) && Self::reusable(&cache.solution) {
                    self.stats.reuses += 1;
                    return cache.solution.clone();
                }
            }
        }
        let solution = BranchAndBound::solve_with_warm_start(&self.inner, model, warm);
        if Self::reusable(&solution) {
            self.cache = Some(CacheEntry {
                model: model.clone(),
                warm: warm.map(|w| w.to_vec()),
                solution: solution.clone(),
            });
        } else {
            // A dirty terminal state is not a safe baseline for reuse.
            self.cache = None;
        }
        solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};
    use std::time::Duration;

    fn knapsack(weights_rhs: f64) -> Model {
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        let c = m.add_binary(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, weights_rhs);
        m
    }

    #[test]
    fn identical_models_reuse_the_cached_solution() {
        let m = knapsack(10.0);
        let mut s = IncrementalSolver::new();
        let first = s.solve(&m);
        let second = s.solve(&m);
        assert_eq!(s.stats().reuses, 1);
        assert_eq!(first.status, second.status);
        assert_eq!(first.objective.to_bits(), second.objective.to_bits());
        assert_eq!(first.nodes, second.nodes);
        assert_eq!(first.lp_iterations, second.lp_iterations);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&first.values), bits(&second.values));
    }

    #[test]
    fn changed_rhs_re_solves() {
        let mut s = IncrementalSolver::new();
        s.solve(&knapsack(10.0));
        let second = s.solve(&knapsack(7.0));
        assert_eq!(s.stats().reuses, 0);
        assert_eq!(s.last_diff(), Some(ModelDiff::RhsOnly));
        assert!((second.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn changed_warm_start_re_solves() {
        let m = knapsack(10.0);
        let mut s = IncrementalSolver::new();
        s.solve_with_warm_start(&m, Some(&[0.0, 0.0, 0.0]));
        s.solve_with_warm_start(&m, Some(&[1.0, 0.0, 0.0]));
        assert_eq!(s.stats().reuses, 0);
    }

    #[test]
    fn node_budget_feasible_results_are_reused_byte_for_byte() {
        // A node-limit cutoff is deterministic (unlike a wall-clock one), so
        // the merely-Feasible incumbent is a safe baseline: replaying it is
        // bit-identical to what a fresh re-solve would compute.
        let m = knapsack(10.0);
        let config = SolverConfig {
            node_limit: 1,
            ..SolverConfig::default()
        };
        let warm = vec![0.0, 0.0, 0.0];
        let mut s = IncrementalSolver::with_config(config.clone());
        let first = s.solve_with_warm_start(&m, Some(&warm));
        assert_eq!(first.status, MipStatus::Feasible);
        assert!(!first.timed_out);
        let second = s.solve_with_warm_start(&m, Some(&warm));
        assert_eq!(s.stats().reuses, 1, "deterministic Feasible should reuse");
        let fresh = BranchAndBound::with_config(config).solve_with_warm_start(&m, Some(&warm));
        for (a, b) in [(&first, &second), (&first, &fresh)] {
            assert_eq!(a.status, b.status);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.nodes, b.nodes);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.values), bits(&b.values));
        }
    }

    #[test]
    fn timed_out_status_never_leaks_into_a_later_solve() {
        // Regression: a zero wall-clock budget marks the first solve
        // timed_out; an identical follow-up must re-solve rather than echo
        // the stale terminal state.
        let m = knapsack(10.0);
        let config = SolverConfig {
            time_limit: Some(Duration::from_millis(0)),
            ..SolverConfig::default()
        };
        let mut s = IncrementalSolver::with_config(config);
        let warm = vec![0.0, 0.0, 0.0];
        let first = s.solve_with_warm_start(&m, Some(&warm));
        assert!(first.timed_out);
        let second = s.solve_with_warm_start(&m, Some(&warm));
        assert_eq!(s.stats().reuses, 0, "timed-out result must not be reused");
        // The second result's status was computed fresh, not carried over.
        assert_eq!(s.stats().solves, 2);
        assert_eq!(second.timed_out, first.timed_out);
    }

    #[test]
    fn diff_classification_covers_all_axes() {
        let base = knapsack(10.0);
        assert_eq!(diff_models(&base, &knapsack(10.0)), ModelDiff::Identical);
        assert_eq!(diff_models(&base, &knapsack(9.0)), ModelDiff::RhsOnly);

        let mut obj = knapsack(10.0);
        obj.vars[0].objective = 11.0;
        assert_eq!(diff_models(&base, &obj), ModelDiff::ObjectiveOnly);

        let mut bounds = knapsack(10.0);
        bounds.vars[2].upper = 0.0;
        assert_eq!(diff_models(&base, &bounds), ModelDiff::BoundsOnly);

        let mut mixed = knapsack(9.0);
        mixed.vars[0].objective = 11.0;
        assert_eq!(diff_models(&base, &mixed), ModelDiff::Mixed);

        let mut extra = knapsack(10.0);
        extra.add_binary(1.0);
        assert_eq!(diff_models(&base, &extra), ModelDiff::Structural);

        let mut coef = Model::new();
        let a = coef.add_binary(10.0);
        let b = coef.add_binary(6.0);
        let c = coef.add_binary(4.0);
        coef.add_constraint(&[(a, 5.5), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        assert_eq!(diff_models(&base, &coef), ModelDiff::Structural);
    }

    #[test]
    fn reset_forgets_the_cache() {
        let m = knapsack(10.0);
        let mut s = IncrementalSolver::new();
        s.solve(&m);
        s.reset();
        s.solve(&m);
        assert_eq!(s.stats().reuses, 0);
        assert_eq!(s.stats().structural, 2);
    }

    #[test]
    fn negative_zero_rhs_is_distinguished_from_zero() {
        // Bit-exact comparison: -0.0 and 0.0 differ, so no reuse happens.
        let mut s = IncrementalSolver::new();
        s.solve(&knapsack(0.0));
        s.solve(&knapsack(-0.0));
        assert_eq!(s.stats().reuses, 0);
        assert_eq!(s.last_diff(), Some(ModelDiff::RhsOnly));
    }
}
