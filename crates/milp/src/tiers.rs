//! The tiered solver ladder behind a common [`Solver`] trait.
//!
//! The degradation governor (core crate) trades schedule quality for cycle
//! latency one rung at a time; each rung maps to a solver tier here:
//!
//! | tier | backend | contract |
//! |------|---------|----------|
//! | 0 | [`GreedyRounding`] | LP relaxation, round at 0.5, repair — no search |
//! | 1 | [`LpRepair`] | root node only: LP + round-and-repair incumbent |
//! | 2 | [`BranchAndBound`] | full best-bound search within budgets |
//!
//! All tiers share the same presolve pass and the same always-feasible
//! warm-start contract (§4.3.6: "leaving the cluster state unchanged is a
//! feasible solution"), so every tier returns a usable assignment whenever
//! one exists. Lower tiers may return weaker objectives but never infeasible
//! assignments — the differential solver-oracle suite
//! (`tests/solver_oracle.rs`) enforces exactly that ordering.

use crate::branch::{BranchAndBound, MipSolution, MipStatus, SolverConfig};
use crate::model::{Model, VarKind};
use crate::presolve::Presolve;
use crate::simplex::{solve_lp_warm, LpOutcome};

/// Common interface of the solver tiers.
///
/// `&mut self` because stateful implementations (the incremental wrapper)
/// carry previous-cycle artifacts between calls.
pub trait Solver {
    /// Degradation tier this backend implements (0, 1, or 2).
    fn tier(&self) -> u8;
    /// Stable human-readable backend name (used in traces and stats).
    fn name(&self) -> &'static str;
    /// Solves `model` with no warm start.
    fn solve(&mut self, model: &Model) -> MipSolution {
        self.solve_with_warm_start(model, None)
    }
    /// Solves `model`, optionally seeding from a known-feasible assignment.
    fn solve_with_warm_start(&mut self, model: &Model, warm: Option<&[f64]>) -> MipSolution;
}

/// Builds the backend for a governor tier with the given budgets.
pub fn solver_for_tier(tier: u8, config: SolverConfig) -> Box<dyn Solver> {
    match tier {
        0 => Box::new(GreedyRounding::with_config(config)),
        1 => Box::new(LpRepair::with_config(config)),
        _ => Box::new(BranchAndBound::with_config(config)),
    }
}

impl Solver for BranchAndBound {
    fn tier(&self) -> u8 {
        2
    }
    fn name(&self) -> &'static str {
        "branch-and-bound"
    }
    fn solve_with_warm_start(&mut self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        BranchAndBound::solve_with_warm_start(self, model, warm)
    }
}

/// Tier 1: solve the root LP relaxation, then round-and-repair — branching
/// children are generated but never expanded.
#[derive(Debug, Clone, Default)]
pub struct LpRepair {
    config: SolverConfig,
}

impl LpRepair {
    /// Tier-1 backend with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tier-1 backend with explicit budgets (the node limit is clamped to
    /// the single root node that defines this tier).
    pub fn with_config(config: SolverConfig) -> Self {
        Self { config }
    }
}

impl Solver for LpRepair {
    fn tier(&self) -> u8 {
        1
    }
    fn name(&self) -> &'static str {
        "lp-repair"
    }
    fn solve_with_warm_start(&mut self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        let config = SolverConfig {
            node_limit: self.config.node_limit.min(1),
            // Guarantee the round-and-repair heuristic fires at the root.
            heuristic_every: 2,
            ..self.config.clone()
        };
        BranchAndBound::with_config(config).solve_with_warm_start(model, warm)
    }
}

/// Tier 0: greedy rounding of the LP relaxation — one LP, one rounding
/// pass with repair, zero branch-and-bound nodes.
#[derive(Debug, Clone, Default)]
pub struct GreedyRounding {
    config: SolverConfig,
}

impl GreedyRounding {
    /// Tier-0 backend with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tier-0 backend with explicit tolerances (node/time budgets are moot:
    /// the tier performs no search).
    pub fn with_config(config: SolverConfig) -> Self {
        Self { config }
    }
}

impl Solver for GreedyRounding {
    fn tier(&self) -> u8 {
        0
    }
    fn name(&self) -> &'static str {
        "greedy-rounding"
    }
    fn solve_with_warm_start(&mut self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        let pre = Presolve::run(model);
        let fail = |status: MipStatus, bound: f64, lp_iterations: usize| MipSolution {
            status,
            objective: if status == MipStatus::Unbounded {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            },
            values: Vec::new(),
            best_bound: bound,
            nodes: 0,
            lp_iterations,
            incumbent_updates: 0,
            timed_out: false,
            presolve: pre.stats(),
        };
        if pre.is_infeasible() {
            return fail(MipStatus::Infeasible, f64::NEG_INFINITY, 0);
        }
        let reduced = pre.reduced();
        let base: Vec<(f64, f64)> = reduced.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let binaries: Vec<usize> = reduced
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| i)
            .collect();
        let mut lp_iterations = 0usize;
        let (lp, _basis) = solve_lp_warm(reduced, Some(&base), None);
        lp_iterations += lp.iterations;
        match lp.outcome {
            LpOutcome::Infeasible => {
                return fail(MipStatus::Infeasible, f64::NEG_INFINITY, lp_iterations)
            }
            LpOutcome::Unbounded => {
                return fail(MipStatus::Unbounded, f64::INFINITY, lp_iterations)
            }
            LpOutcome::Optimal | LpOutcome::IterationLimit => {}
        }

        // Round the relaxation; fall back to the warm start if the rounding
        // cannot be repaired (the warm start is feasible by contract).
        let helper = BranchAndBound::with_config(self.config.clone());
        let mut incumbent_updates = 0usize;
        let mut incumbent =
            helper.fix_and_solve(reduced, &base, &binaries, &lp.values, &mut lp_iterations);
        if incumbent.is_some() {
            incumbent_updates += 1;
        }
        if incumbent.is_none() {
            if let Some(w) = warm {
                if w.len() == model.num_vars() {
                    let projected = pre.project_warm(w);
                    incumbent = helper.fix_and_solve(
                        reduced,
                        &base,
                        &binaries,
                        &projected,
                        &mut lp_iterations,
                    );
                    if incumbent.is_some() {
                        incumbent_updates += 1;
                    }
                }
            }
        }
        let best_bound = lp.objective + pre.offset();
        match incumbent {
            Some((objective, values)) => {
                let gap = crate::branch::gap_slack(objective, self.config.gap_tolerance);
                let objective = objective + pre.offset();
                MipSolution {
                    // Rounding that meets the LP bound is proved optimal.
                    status: if lp.objective <= objective - pre.offset() + gap {
                        MipStatus::Optimal
                    } else {
                        MipStatus::Feasible
                    },
                    objective,
                    values: pre.restore(&values),
                    best_bound,
                    nodes: 0,
                    lp_iterations,
                    incumbent_updates,
                    timed_out: false,
                    presolve: pre.stats(),
                }
            }
            None => fail(MipStatus::NoSolution, best_bound, lp_iterations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    fn knapsack() -> Model {
        // max 10a + 6b + 4c, 5a + 4b + 3c ≤ 10 → optimum 16 (a + b).
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        let c = m.add_binary(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        m
    }

    fn scheduler_shape() -> (Model, Vec<f64>) {
        // Two jobs × three options + shared capacity; zero warm start.
        let mut m = Model::new();
        let a: Vec<_> = [5.0, 4.0, 3.0].iter().map(|&u| m.add_binary(u)).collect();
        let b: Vec<_> = [5.0, 4.0, 3.0].iter().map(|&u| m.add_binary(u)).collect();
        m.add_constraint(&[(a[0], 1.0), (a[1], 1.0), (a[2], 1.0)], Cmp::Le, 1.0);
        m.add_constraint(&[(b[0], 1.0), (b[1], 1.0), (b[2], 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&a);
        m.add_sos1(&b);
        m.add_constraint(&[(a[0], 1.0), (b[0], 1.0)], Cmp::Le, 1.0);
        let warm = vec![0.0; m.num_vars()];
        (m, warm)
    }

    #[test]
    fn tiers_report_identity() {
        assert_eq!(GreedyRounding::new().tier(), 0);
        assert_eq!(LpRepair::new().tier(), 1);
        assert_eq!(Solver::tier(&BranchAndBound::new()), 2);
        for t in 0..=2u8 {
            assert_eq!(solver_for_tier(t, SolverConfig::default()).tier(), t);
        }
        assert_eq!(solver_for_tier(9, SolverConfig::default()).tier(), 2);
    }

    #[test]
    fn every_tier_solves_the_knapsack_feasibly() {
        let m = knapsack();
        let reference = BranchAndBound::new().solve(&m);
        for t in 0..=2u8 {
            let mut s = solver_for_tier(t, SolverConfig::default());
            let sol = s.solve(&m);
            assert!(sol.has_solution(), "tier {t}");
            assert!(m.is_feasible(&sol.values, 1e-6), "tier {t}");
            assert!(
                sol.objective <= reference.objective + 1e-6,
                "tier {t}: {} > {}",
                sol.objective,
                reference.objective
            );
        }
    }

    #[test]
    fn every_tier_honours_the_warm_start_contract() {
        let (m, warm) = scheduler_shape();
        for t in 0..=2u8 {
            let mut s = solver_for_tier(t, SolverConfig::default());
            let sol = s.solve_with_warm_start(&m, Some(&warm));
            assert!(sol.has_solution(), "tier {t}");
            assert!(m.is_feasible(&sol.values, 1e-6), "tier {t}");
        }
    }

    #[test]
    fn tier0_expands_no_nodes() {
        let (m, warm) = scheduler_shape();
        let sol = GreedyRounding::new().solve_with_warm_start(&m, Some(&warm));
        assert_eq!(sol.nodes, 0);
        assert!(sol.has_solution());
    }

    #[test]
    fn tier1_expands_at_most_the_root() {
        let (m, warm) = scheduler_shape();
        let sol = LpRepair::new().solve_with_warm_start(&m, Some(&warm));
        assert!(sol.nodes <= 1, "{} nodes", sol.nodes);
        assert!(sol.has_solution());
    }

    #[test]
    fn tier0_detects_infeasibility() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0)], Cmp::Ge, 2.0);
        let sol = GreedyRounding::new().solve(&m);
        assert_eq!(sol.status, MipStatus::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn tier0_proves_optimality_when_rounding_meets_the_bound() {
        // Single binary, positive utility: LP relaxation is integral.
        let mut m = Model::new();
        m.add_binary(3.0);
        let sol = GreedyRounding::new().solve(&m);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-9);
    }
}
