//! The solver's only wall-clock access point.
//!
//! A deliberate duplicate of `threesigma::sched::clock` — `milp` is a
//! zero-dependency leaf crate (enforced by `threesigma-lint`'s layering
//! rule), so it carries its own copy rather than growing a dependency edge.
//! Branch-and-bound uses the clock solely for time budgets; solutions are a
//! function of the model alone.

use std::time::{Duration, Instant};

/// A started timer; the one sanctioned way to measure elapsed wall time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
