//! Best-bound branch-and-bound over the LP relaxation.
//!
//! Mirrors the external-solver contract 3σSched relies on (§4.3.6): accept a
//! warm start (the previous cycle's schedule — "leaving the cluster state
//! unchanged is a feasible solution"), improve on it, and return the best
//! incumbent found within a time/node budget rather than insisting on a
//! proved optimum.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Duration;

use crate::clock::Stopwatch;

use crate::model::{Model, VarKind};
use crate::presolve::{Presolve, PresolveStats};
use crate::simplex::{solve_lp_warm, solve_lp_with_bounds, Basis, LpOutcome};

/// Terminal status of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Incumbent proved optimal (within the gap tolerance).
    Optimal,
    /// Feasible incumbent returned, optimality not proved (budget hit).
    Feasible,
    /// No feasible assignment exists.
    Infeasible,
    /// LP relaxation unbounded.
    Unbounded,
    /// Budget exhausted before any feasible assignment was found.
    NoSolution,
}

/// Result of a MIP solve.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Terminal status.
    pub status: MipStatus,
    /// Objective of `values` (−∞ when no incumbent).
    pub objective: f64,
    /// Incumbent assignment, one value per model variable (empty when no
    /// incumbent).
    pub values: Vec<f64>,
    /// Best remaining upper bound on the optimum.
    pub best_bound: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes: usize,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: usize,
    /// Times the incumbent was created or improved (warm-start seed,
    /// integral node, or round-and-repair heuristic).
    pub incumbent_updates: usize,
    /// True when the wall-clock budget ended the search.
    pub timed_out: bool,
    /// What the shared presolve pass eliminated before the search.
    pub presolve: PresolveStats,
}

impl MipSolution {
    /// True if a usable assignment was produced.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, MipStatus::Optimal | MipStatus::Feasible)
    }
}

/// Budgets and tolerances for [`BranchAndBound`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Wall-clock budget; best incumbent so far is returned when exceeded.
    pub time_limit: Option<Duration>,
    /// Maximum branch-and-bound nodes to expand.
    pub node_limit: usize,
    /// Relative optimality gap at which the incumbent is declared optimal.
    pub gap_tolerance: f64,
    /// Distance from an integer at which a binary is considered integral.
    pub integrality_tol: f64,
    /// Run the round-and-repair heuristic every this many nodes.
    pub heuristic_every: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: 50_000,
            gap_tolerance: 1e-6,
            integrality_tol: 1e-6,
            heuristic_every: 64,
        }
    }
}

/// Branch-and-bound MIP solver (the tier-2 backend; see [`crate::tiers`]).
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    config: SolverConfig,
}

/// A node's bound changes, chained to its parent to avoid cloning the full
/// bound vector per node.
struct NodeChanges {
    changes: Vec<(usize, f64, f64)>,
    parent: Option<Rc<NodeChanges>>,
}

struct Node {
    bound: f64,
    changes: Option<Rc<NodeChanges>>,
    depth: usize,
    /// Optimal basis of the parent's LP relaxation; the child LP differs
    /// only in a handful of bounds, so dual simplex reoptimises from here
    /// instead of running phase 1 from scratch.
    basis: Option<Rc<Basis>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on LP bound (best-bound-first), deeper first on ties to
        // reach incumbents sooner.
        self.bound
            .total_cmp(&other.bound)
            .then(self.depth.cmp(&other.depth))
    }
}

impl BranchAndBound {
    /// Solver with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with explicit budgets/tolerances.
    pub fn with_config(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Convenience: sets only the wall-clock budget.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.config.time_limit = Some(limit);
        self
    }

    /// Solves `model` to (attempted) optimality.
    pub fn solve(&self, model: &Model) -> MipSolution {
        self.solve_with_warm_start(model, None)
    }

    /// Solves `model`, optionally seeding the incumbent from `warm` — a full
    /// assignment whose binary components are fixed and repaired via an LP
    /// solve (the previous scheduling cycle's solution, §4.3.6).
    ///
    /// A presolve pass ([`Presolve`]) runs first; the search operates on the
    /// reduced model and the solution is restored to the original variable
    /// space before returning.
    pub fn solve_with_warm_start(&self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        let pre = Presolve::run(model);
        if pre.is_infeasible() {
            return MipSolution {
                status: MipStatus::Infeasible,
                objective: f64::NEG_INFINITY,
                values: Vec::new(),
                best_bound: f64::NEG_INFINITY,
                nodes: 0,
                lp_iterations: 0,
                incumbent_updates: 0,
                timed_out: false,
                presolve: pre.stats(),
            };
        }
        if pre.stats().total() == 0 {
            let mut sol = self.solve_reduced(model, warm);
            sol.presolve = pre.stats();
            return sol;
        }
        let projected = warm.map(|w| pre.project_warm(w));
        let mut sol = self.solve_reduced(pre.reduced(), projected.as_deref());
        // Restore any reduced-space assignment (including a fully-reduced
        // model's empty one) to original variable indices; statuses with no
        // assignment keep their empty `values`.
        if sol.has_solution() || !sol.values.is_empty() {
            sol.values = pre.restore(&sol.values);
        }
        sol.objective += pre.offset();
        sol.best_bound += pre.offset();
        sol.presolve = pre.stats();
        sol
    }

    /// Branch-and-bound search proper, on an already-presolved model.
    fn solve_reduced(&self, model: &Model, warm: Option<&[f64]>) -> MipSolution {
        let started = Stopwatch::start();
        let base: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let binaries: Vec<usize> = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| i)
            .collect();
        let tol = self.config.integrality_tol;
        let mut lp_iterations = 0usize;
        let mut incumbent_updates = 0usize;
        let mut timed_out = false;

        let mut incumbent: Option<(f64, Vec<f64>)> = None;

        // Seed from the warm start, if it repairs to feasible.
        if let Some(w) = warm {
            if w.len() == model.num_vars() {
                if let Some((obj, x)) =
                    self.fix_and_solve(model, &base, &binaries, w, &mut lp_iterations)
                {
                    incumbent = Some((obj, x));
                    incumbent_updates += 1;
                }
            }
        }

        // Root relaxation.
        let (root, root_basis) = solve_lp_warm(model, Some(&base), None);
        lp_iterations += root.iterations;
        match root.outcome {
            LpOutcome::Infeasible => {
                return MipSolution {
                    status: MipStatus::Infeasible,
                    objective: incumbent.as_ref().map_or(f64::NEG_INFINITY, |(o, _)| *o),
                    values: incumbent.map(|(_, x)| x).unwrap_or_default(),
                    best_bound: f64::NEG_INFINITY,
                    nodes: 0,
                    lp_iterations,
                    incumbent_updates,
                    timed_out: false,
                    presolve: PresolveStats::default(),
                };
            }
            LpOutcome::Unbounded => {
                return MipSolution {
                    status: MipStatus::Unbounded,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    best_bound: f64::INFINITY,
                    nodes: 0,
                    lp_iterations,
                    incumbent_updates,
                    timed_out: false,
                    presolve: PresolveStats::default(),
                };
            }
            LpOutcome::Optimal | LpOutcome::IterationLimit => {}
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root.objective,
            changes: None,
            depth: 0,
            basis: Some(Rc::new(root_basis)),
        });

        let mut nodes = 0usize;
        let mut best_bound = root.objective;
        let out_of_budget = |nodes: usize, started: Stopwatch| {
            nodes >= self.config.node_limit
                || self
                    .config
                    .time_limit
                    .is_some_and(|l| started.elapsed() >= l)
        };

        while let Some(node) = heap.pop() {
            best_bound = node.bound;
            if let Some((obj, _)) = &incumbent {
                if node.bound <= obj + gap_slack(*obj, self.config.gap_tolerance) {
                    // Best remaining bound cannot beat the incumbent.
                    best_bound = node.bound;
                    return self.finish(
                        MipStatus::Optimal,
                        incumbent,
                        best_bound,
                        nodes,
                        lp_iterations,
                        incumbent_updates,
                        false,
                    );
                }
            }
            if out_of_budget(nodes, started) {
                timed_out = self
                    .config
                    .time_limit
                    .is_some_and(|l| started.elapsed() >= l);
                heap.push(node);
                break;
            }
            nodes += 1;

            let bounds = materialise(&base, node.changes.as_deref());
            let (lp, lp_basis) = solve_lp_warm(model, Some(&bounds), node.basis.as_deref());
            lp_iterations += lp.iterations;
            match lp.outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    return MipSolution {
                        status: MipStatus::Unbounded,
                        objective: f64::INFINITY,
                        values: Vec::new(),
                        best_bound: f64::INFINITY,
                        nodes,
                        lp_iterations,
                        incumbent_updates,
                        timed_out: false,
                        presolve: PresolveStats::default(),
                    };
                }
                LpOutcome::Optimal | LpOutcome::IterationLimit => {}
            }
            if let Some((obj, _)) = &incumbent {
                if lp.objective <= obj + gap_slack(*obj, self.config.gap_tolerance) {
                    continue;
                }
            }

            let frac = most_fractional(&binaries, &lp.values, tol);
            match frac {
                None => {
                    // Integral: candidate incumbent.
                    let obj = lp.objective;
                    if incumbent.as_ref().is_none_or(|(o, _)| obj > *o) {
                        incumbent = Some((obj, lp.values.clone()));
                        incumbent_updates += 1;
                    }
                }
                Some(branch_var) => {
                    // Periodic round-and-repair heuristic for an early
                    // incumbent (mirrors "query best solution found so far").
                    if nodes % self.config.heuristic_every == 1 {
                        if let Some((obj, x)) = self.fix_and_solve(
                            model,
                            &bounds,
                            &binaries,
                            &lp.values,
                            &mut lp_iterations,
                        ) {
                            if incumbent.as_ref().is_none_or(|(o, _)| obj > *o) {
                                incumbent = Some((obj, x));
                                incumbent_updates += 1;
                            }
                        }
                    }
                    // SOS1 branching if the variable belongs to a group with
                    // several fractional members; variable dichotomy
                    // otherwise.
                    let children = self.branch_children(model, &lp.values, branch_var, tol, &node);
                    let parent_basis = Rc::new(lp_basis);
                    for changes in children {
                        let child = Node {
                            bound: lp.objective,
                            changes: Some(Rc::new(changes)),
                            depth: node.depth + 1,
                            basis: Some(Rc::clone(&parent_basis)),
                        };
                        heap.push(child);
                    }
                }
            }
        }

        let best_remaining = heap
            .peek()
            .map(|n| n.bound)
            .unwrap_or(f64::NEG_INFINITY)
            .max(incumbent.as_ref().map_or(f64::NEG_INFINITY, |(o, _)| *o));
        let status = match (&incumbent, heap.is_empty()) {
            (Some(_), true) => MipStatus::Optimal,
            (Some(_), false) => MipStatus::Feasible,
            (None, true) => MipStatus::Infeasible,
            (None, false) => MipStatus::NoSolution,
        };
        self.finish(
            status,
            incumbent,
            best_remaining.min(best_bound),
            nodes,
            lp_iterations,
            incumbent_updates,
            timed_out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        status: MipStatus,
        incumbent: Option<(f64, Vec<f64>)>,
        best_bound: f64,
        nodes: usize,
        lp_iterations: usize,
        incumbent_updates: usize,
        timed_out: bool,
    ) -> MipSolution {
        match incumbent {
            Some((objective, mut values)) => {
                // Snap near-integral binaries exactly.
                for v in &mut values {
                    if (*v - v.round()).abs() <= 1e-5 {
                        *v = v.round();
                    }
                }
                MipSolution {
                    status,
                    objective,
                    values,
                    best_bound,
                    nodes,
                    lp_iterations,
                    incumbent_updates,
                    timed_out,
                    presolve: PresolveStats::default(),
                }
            }
            None => MipSolution {
                status,
                objective: f64::NEG_INFINITY,
                values: Vec::new(),
                best_bound,
                nodes,
                lp_iterations,
                incumbent_updates,
                timed_out,
                presolve: PresolveStats::default(),
            },
        }
    }

    /// Fixes every binary to its rounding in `reference`, solves the LP for
    /// the continuous variables, and repairs infeasibility by unsetting the
    /// most weakly selected binaries. Shared with the tier-0 greedy backend.
    pub(crate) fn fix_and_solve(
        &self,
        model: &Model,
        bounds: &[(f64, f64)],
        binaries: &[usize],
        reference: &[f64],
        lp_iterations: &mut usize,
    ) -> Option<(f64, Vec<f64>)> {
        let mut fixed = bounds.to_vec();
        // (value, index) of binaries rounded up, weakest first for repair.
        let mut ones: Vec<(f64, usize)> = Vec::new();
        for &j in binaries {
            let v = reference[j];
            let up = v >= 0.5 && bounds[j].1 >= 1.0;
            let target: f64 = if up { 1.0 } else { 0.0 };
            let target = target.clamp(bounds[j].0, bounds[j].1);
            fixed[j] = (target, target);
            if target == 1.0 {
                ones.push((v, j));
            }
        }
        ones.sort_by(|a, b| a.0.total_cmp(&b.0));
        for _attempt in 0..=ones.len().min(8) {
            let lp = solve_lp_with_bounds(model, Some(&fixed));
            *lp_iterations += lp.iterations;
            match lp.outcome {
                LpOutcome::Optimal | LpOutcome::IterationLimit
                    if model.is_feasible(&snap(&lp.values), 1e-5) =>
                {
                    let vals = snap(&lp.values);
                    let obj = model.objective_value(&vals);
                    return Some((obj, vals));
                }
                _ => {
                    // Drop the weakest selected binary and retry.
                    let (_, j) = ones.pop()?;
                    let zero = 0.0f64.clamp(bounds[j].0, bounds[j].1);
                    fixed[j] = (zero, zero);
                }
            }
        }
        None
    }

    fn branch_children(
        &self,
        model: &Model,
        lp_values: &[f64],
        branch_var: usize,
        tol: f64,
        parent: &Node,
    ) -> Vec<NodeChanges> {
        // Prefer SOS1 branching: split the group containing the branch
        // variable into two halves ordered by LP value.
        for group in &model.sos1 {
            if !group.contains(&branch_var) {
                continue;
            }
            let fractional: Vec<usize> = group
                .iter()
                .copied()
                .filter(|&j| {
                    let v = lp_values[j];
                    v > tol && v < 1.0 - tol
                })
                .collect();
            if fractional.len() >= 2 {
                let mut ordered = fractional;
                ordered.sort_by(|&a, &b| lp_values[b].total_cmp(&lp_values[a]));
                let half = ordered.len() / 2;
                let (keep, rest) = ordered.split_at(half.max(1));
                let fix_zero = |vars: &[usize]| NodeChanges {
                    changes: vars.iter().map(|&j| (j, 0.0, 0.0)).collect(),
                    parent: parent.changes.clone(),
                };
                return vec![fix_zero(keep), fix_zero(rest)];
            }
        }
        // Variable dichotomy.
        vec![
            NodeChanges {
                changes: vec![(branch_var, 0.0, 0.0)],
                parent: parent.changes.clone(),
            },
            NodeChanges {
                changes: vec![(branch_var, 1.0, 1.0)],
                parent: parent.changes.clone(),
            },
        ]
    }
}

pub(crate) fn gap_slack(obj: f64, gap: f64) -> f64 {
    gap * obj.abs().max(1.0)
}

fn snap(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| {
            if (*v - v.round()).abs() <= 1e-6 {
                v.round()
            } else {
                *v
            }
        })
        .collect()
}

fn most_fractional(binaries: &[usize], values: &[f64], tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &j in binaries {
        let v = values[j];
        let dist = (v - v.round()).abs();
        if dist > tol && best.is_none_or(|(_, d)| dist > d) {
            best = Some((j, dist));
        }
    }
    best.map(|(j, _)| j)
}

fn materialise(base: &[(f64, f64)], changes: Option<&NodeChanges>) -> Vec<(f64, f64)> {
    let mut bounds = base.to_vec();
    // Child changes override ancestors; apply root-to-leaf.
    let mut chain = Vec::new();
    let mut cur = changes;
    while let Some(c) = cur {
        chain.push(c);
        cur = c.parent.as_deref();
    }
    for c in chain.iter().rev() {
        for (j, lo, hi) in &c.changes {
            bounds[*j] = (*lo, *hi);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new();
        m.add_continuous(0.0, 4.0, 2.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 8.0);
    }

    #[test]
    fn knapsack_finds_integer_optimum() {
        // max 10a + 6b + 4c, 5a + 4b + 3c ≤ 10 → a + b = 16 (a+c=14, b+c=10).
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        let c = m.add_binary(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 16.0);
        assert_near(s.values[a.index()], 1.0);
        assert_near(s.values[b.index()], 1.0);
        assert_near(s.values[c.index()], 0.0);
    }

    #[test]
    fn infeasible_mip_reports_infeasible() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0)], Cmp::Ge, 2.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Infeasible);
        assert!(!s.has_solution());
    }

    #[test]
    fn sos1_groups_branch_correctly() {
        // Two jobs, each with three placement options, shared capacity:
        // classic 3σSched shape. Optimal picks the best compatible pair.
        let mut m = Model::new();
        let a: Vec<_> = [5.0, 4.0, 3.0].iter().map(|&u| m.add_binary(u)).collect();
        let b: Vec<_> = [5.0, 4.0, 3.0].iter().map(|&u| m.add_binary(u)).collect();
        m.add_constraint(&[(a[0], 1.0), (a[1], 1.0), (a[2], 1.0)], Cmp::Le, 1.0);
        m.add_constraint(&[(b[0], 1.0), (b[1], 1.0), (b[2], 1.0)], Cmp::Le, 1.0);
        m.add_sos1(&a);
        m.add_sos1(&b);
        // Option 0 of both jobs collide on a unit resource.
        m.add_constraint(&[(a[0], 1.0), (b[0], 1.0)], Cmp::Le, 1.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 9.0);
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0)], Cmp::Le, 7.0);
        let warm = vec![0.0, 1.0]; // feasible but suboptimal
        let s = BranchAndBound::new().solve_with_warm_start(&m, Some(&warm));
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 10.0);
    }

    #[test]
    fn node_budget_returns_best_incumbent() {
        // Tight budget still yields a feasible (possibly optimal) solution
        // thanks to the rounding heuristic.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(1.0 + (i % 5) as f64))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, 1.0 + (i % 3) as f64))
            .collect();
        m.add_constraint(&terms, Cmp::Le, 7.0);
        let cfg = SolverConfig {
            node_limit: 1,
            ..SolverConfig::default()
        };
        let s = BranchAndBound::with_config(cfg).solve(&m);
        assert!(s.has_solution());
        assert!(m.is_feasible(&s.values, 1e-5));
        assert!(s.best_bound + 1e-6 >= s.objective);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3I + y, y ≤ 4I, y ≤ 3, I binary → I=1, y=3, obj 6.
        let mut m = Model::new();
        let i = m.add_binary(3.0);
        let y = m.add_continuous(0.0, 3.0, 1.0);
        m.add_constraint(&[(y, 1.0), (i, -4.0)], Cmp::Le, 0.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 6.0);
        assert_near(s.values[i.index()], 1.0);
        assert_near(s.values[y.index()], 3.0);
    }

    #[test]
    fn equality_coupled_binaries() {
        // Allocation must equal 2·I across partitions (3σSched demand shape).
        let mut m = Model::new();
        let i = m.add_binary(5.0);
        let a1 = m.add_continuous(0.0, f64::INFINITY, 0.0);
        let a2 = m.add_continuous(0.0, f64::INFINITY, 0.0);
        m.add_constraint(&[(a1, 1.0), (a2, 1.0), (i, -2.0)], Cmp::Eq, 0.0);
        m.add_constraint(&[(a1, 1.0)], Cmp::Le, 1.5);
        m.add_constraint(&[(a2, 1.0)], Cmp::Le, 1.5);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 5.0);
        let total = s.values[a1.index()] + s.values[a2.index()];
        assert_near(total, 2.0);
    }

    #[test]
    fn all_negative_objective_prefers_all_zero() {
        let mut m = Model::new();
        for _ in 0..6 {
            m.add_binary(-1.0 - 0.5);
        }
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 0.0);
        assert!(s.values.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn time_limit_zero_still_returns_warm_start() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        let cfg = SolverConfig {
            time_limit: Some(Duration::from_millis(0)),
            ..SolverConfig::default()
        };
        let warm = vec![1.0, 0.0];
        let s = BranchAndBound::with_config(cfg).solve_with_warm_start(&m, Some(&warm));
        assert!(s.has_solution());
        assert!(s.objective >= 1.0 - 1e-6);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn infeasible_warm_start_is_repaired_or_discarded() {
        let mut m = Model::new();
        let a = m.add_binary(3.0);
        let b = m.add_binary(2.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        // Warm start violates the row; the repair drops the weaker binary.
        let warm = vec![1.0, 1.0];
        let s = BranchAndBound::new().solve_with_warm_start(&m, Some(&warm));
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 3.0);
    }

    #[test]
    fn incumbent_updates_and_timeout_are_reported() {
        let mut m = Model::new();
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0)], Cmp::Le, 7.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert!(s.incumbent_updates >= 1);
        assert!(!s.timed_out);

        // A zero wall-clock budget must be reported as a timeout hit.
        let cfg = SolverConfig {
            time_limit: Some(Duration::from_millis(0)),
            ..SolverConfig::default()
        };
        let warm = vec![0.0, 1.0];
        let s = BranchAndBound::with_config(cfg).solve_with_warm_start(&m, Some(&warm));
        assert!(s.timed_out);
        assert!(s.incumbent_updates >= 1); // warm-start seed counted
    }

    #[test]
    fn wrong_length_warm_start_is_ignored() {
        let mut m = Model::new();
        m.add_binary(1.0);
        let s = BranchAndBound::new().solve_with_warm_start(&m, Some(&[1.0, 0.0, 0.0]));
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn best_bound_dominates_incumbent() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(1.0 + i as f64)).collect();
        let terms: Vec<_> = vars.iter().map(|v| (*v, 2.0)).collect();
        m.add_constraint(&terms, Cmp::Le, 5.0);
        let s = BranchAndBound::new().solve(&m);
        assert!(s.has_solution());
        assert!(s.best_bound + 1e-6 >= s.objective);
    }

    #[test]
    fn equality_constrained_binaries() {
        // Exactly two of four must be picked; maximise their value.
        let mut m = Model::new();
        let vars: Vec<_> = [4.0, 1.0, 3.0, 2.0]
            .iter()
            .map(|&u| m.add_binary(u))
            .collect();
        let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
        m.add_constraint(&terms, Cmp::Eq, 2.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, 7.0);
        assert_near(s.values[vars[0].index()], 1.0);
        assert_near(s.values[vars[2].index()], 1.0);
    }

    #[test]
    fn continuous_only_negative_costs() {
        // min-style: maximize -x - y with x + y >= 3 → objective -3.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, -1.0);
        let y = m.add_continuous(0.0, 10.0, -1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        let s = BranchAndBound::new().solve(&m);
        assert_eq!(s.status, MipStatus::Optimal);
        assert_near(s.objective, -3.0);
    }

    #[test]
    fn deep_sos1_chain_terminates() {
        // 20 jobs, 5 options each, shared scarce capacity — forces real
        // branching but must terminate quickly at default budgets.
        let mut m = Model::new();
        let mut cap_terms = Vec::new();
        for j in 0..20 {
            let vars: Vec<_> = (0..5)
                .map(|o| m.add_binary(1.0 + ((j * 5 + o) % 7) as f64))
                .collect();
            let d: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
            m.add_constraint(&d, Cmp::Le, 1.0);
            m.add_sos1(&vars);
            for (o, v) in vars.iter().enumerate() {
                cap_terms.push((*v, 1.0 + (o % 3) as f64));
            }
        }
        m.add_constraint(&cap_terms, Cmp::Le, 12.0);
        let s = BranchAndBound::new().solve(&m);
        assert!(s.has_solution());
        assert!(m.is_feasible(&s.values, 1e-5));
    }

    #[test]
    fn nan_objective_coefficient_terminates_with_sane_status() {
        // Regression for the NaN-deadline class of bug: a NaN objective
        // coefficient flows into LP objectives and node bounds, where
        // `partial_cmp`-based ordering used to make the best-bound heap and
        // incumbent comparisons unstable. `total_cmp` gives NaN a fixed
        // place in the order, so the search must run to a terminal status
        // within its node budget instead of looping or panicking.
        let mut m = Model::new();
        let a = m.add_binary(f64::NAN);
        let b = m.add_binary(1.0);
        let c = m.add_binary(2.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 2.0);
        m.add_sos1(&[a, b, c]);
        let cfg = SolverConfig {
            node_limit: 1_000,
            ..SolverConfig::default()
        };
        let s = BranchAndBound::with_config(cfg).solve(&m);
        assert!(s.nodes <= 1_000, "budget respected: {} nodes", s.nodes);
        // Any terminal status is acceptable under a poisoned objective; what
        // matters is that one is reached and reported coherently.
        if s.has_solution() {
            assert_eq!(s.values.len(), m.num_vars());
            assert!(m.is_feasible(&s.values, 1e-5));
        } else {
            assert!(s.values.is_empty());
        }
    }

    #[test]
    fn brute_force_agreement_on_random_binary_problems() {
        // Deterministic xorshift stream; compare against exhaustive search.
        let mut seed = 0xdeadbeefcafef00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 6;
            let mut m = Model::new();
            let vars: Vec<_> = (0..n).map(|_| m.add_binary(next() * 10.0 - 2.0)).collect();
            for _ in 0..3 {
                let terms: Vec<_> = vars.iter().map(|v| (*v, next() * 4.0 - 1.0)).collect();
                m.add_constraint(&terms, Cmp::Le, next() * 6.0);
            }
            // Exhaustive optimum.
            let mut best = f64::NEG_INFINITY;
            for mask in 0u32..(1 << n) {
                let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
                if m.is_feasible(&x, 1e-9) {
                    best = best.max(m.objective_value(&x));
                }
            }
            let s = BranchAndBound::new().solve(&m);
            if best == f64::NEG_INFINITY {
                assert_eq!(s.status, MipStatus::Infeasible, "trial {trial}");
            } else {
                assert!(s.has_solution(), "trial {trial}");
                assert!(
                    (s.objective - best).abs() < 1e-5,
                    "trial {trial}: got {} want {best}",
                    s.objective
                );
                assert!(m.is_feasible(&s.values, 1e-5), "trial {trial}");
            }
        }
    }
}
