//! Serve-mode soak: long-horizon streaming under *bounded* memory, plus
//! restart equivalence at scale.
//!
//! The bounded-memory contract is asserted through the obs gauges the
//! serve stack exports (`predict_tracked_values`, `sched_cache_entries`,
//! `serve_live_jobs`, and their `_limit`/`_capacity` companions): over a
//! stream long enough to overflow every cap, each tracked-entry count must
//! plateau at its cap instead of growing with the job count. The release
//! profile runs 100 000 jobs; a smaller always-on variant keeps the same
//! assertions in every `cargo test`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use threesigma::{EstimateSource, SchedConfig, ThreeSigmaScheduler};
use threesigma_cluster::{
    Attributes, ClusterSpec, JobKind, JobSpec, ServeConfig, ServeSession, ServeSummary,
};
use threesigma_obs::Recorder;
use threesigma_predict::PredictorConfig;

/// Estimate-cache capacity (entries beyond this must be evicted once stale).
const CACHE_CAP: usize = 8;
/// Predictor per-feature-value state cap.
const PREDICTOR_CAP: usize = 512;
/// Distinct tenants — enough that the predictor cap is overflowed many
/// times over (tenants × job names × feature combinations ≫ cap).
const TENANTS: u64 = 300;
/// Jobs per normal arrival burst.
const BURST: usize = 20;
/// Jobs in every eighth burst — an overload storm that outruns the
/// cluster, builds a pending queue, and leaves stale unpinned cache
/// entries beyond the cap (running jobs' entries are pinned, so only a
/// backlog actually exercises eviction).
const STORM: usize = 150;
/// Seconds between bursts.
const BURST_GAP: f64 = 24.0;

fn build(recorder: &Recorder) -> (ServeSession, ThreeSigmaScheduler) {
    let serve_cfg = ServeConfig {
        cycle_interval: 2.0,
        retention: 120.0,
        ..ServeConfig::default()
    };
    let sched_cfg = SchedConfig {
        cycle_hint: serve_cfg.cycle_interval,
        cache_capacity: Some(CACHE_CAP),
        max_timings: Some(64),
        ..SchedConfig::default()
    };
    let pred_cfg = PredictorConfig {
        max_tracked_values: Some(PREDICTOR_CAP),
        ..PredictorConfig::default()
    };
    let sched = ThreeSigmaScheduler::new(sched_cfg, EstimateSource::Predicted, pred_cfg)
        .with_recorder(recorder);
    let session = ServeSession::new(ClusterSpec::uniform(8, 32), serve_cfg, recorder)
        .expect("valid serve config");
    (session, sched)
}

/// A deterministic streamed job: multi-tenant, mixed SLO/BE, short runtimes
/// so the backlog stays modest while estimates churn.
fn wire_job(rng: &mut StdRng, id: u64, submit: f64) -> JobSpec {
    let tenant = rng.random::<u64>() % TENANTS;
    let name = rng.random::<u64>() % 7;
    let tasks = 1 + rng.random::<u32>() % 8;
    let runtime = 5.0 + rng.random::<f64>() * 55.0;
    let kind = if rng.random::<f64>() < 0.5 {
        JobKind::Slo {
            deadline: submit + runtime * (2.0 + rng.random::<f64>() * 3.0),
        }
    } else {
        JobKind::BestEffort
    };
    let attrs = Attributes::new()
        .with("tenant", format!("t{tenant}"))
        .with("user", format!("t{tenant}"))
        .with("job_name", format!("j{name}"));
    JobSpec::new(id, submit, tasks, runtime, kind).with_attributes(attrs)
}

/// Streams `total` jobs through one session, sampling the bound gauges as
/// it goes, and asserts every tracked-entry count plateaus at its cap.
fn soak(total: u64) {
    let recorder = Recorder::enabled();
    let (mut session, mut sched) = build(&recorder);
    let mut rng = StdRng::seed_from_u64(0x3516_0a7e_50a4);
    let mut id = 0u64;
    let mut t = 0.0;
    let mut bursts = 0u64;
    while id < total {
        session
            .pump_until(t, &mut sched)
            .expect("serve loop stays healthy");
        let burst = if bursts.is_multiple_of(8) {
            STORM
        } else {
            BURST
        };
        for _ in 0..burst.min((total - id) as usize) {
            session.submit(wire_job(&mut rng, id, t)).expect("accepted");
            id += 1;
        }
        t += BURST_GAP;
        bursts += 1;
        // Sample the bounds mid-stream, after the gauges have flushed at
        // least once. Entry counts must track caps, not the job count.
        if bursts.is_multiple_of(10) {
            let snap = recorder.snapshot();
            let tracked = snap.gauge("predict_tracked_values").unwrap();
            assert!(
                tracked <= PREDICTOR_CAP as f64,
                "predictor state exceeded its cap mid-stream: {tracked}"
            );
            let entries = snap.gauge("sched_cache_entries").unwrap();
            let live = snap.gauge("serve_live_jobs").unwrap();
            assert!(
                entries <= CACHE_CAP as f64 + live,
                "cache grew past cap + live jobs: {entries} entries, {live} live"
            );
        }
    }
    session
        .drain(f64::INFINITY, &mut sched)
        .expect("drains to quiescence");

    let summary = session.summary();
    assert_eq!(summary.submitted, total);
    assert_eq!(summary.completed + summary.canceled, total);
    // Everything is terminal at quiescence; whatever finished more than a
    // retention window before the final event has been retired. Only the
    // last window's worth of records may still be held live.
    assert_eq!(summary.retired + summary.live as u64, total);
    assert!(
        (summary.live as u64) < total.min(1_000),
        "retention must bound live records to the final window ({} live of {total})",
        summary.live
    );

    let snap = recorder.snapshot();
    // Plateau: the predictor saturated its cap exactly and kept evicting.
    assert_eq!(
        snap.gauge("predict_tracked_values").unwrap(),
        PREDICTOR_CAP as f64
    );
    assert_eq!(
        snap.gauge("predict_tracked_values_limit").unwrap(),
        PREDICTOR_CAP as f64
    );
    assert!(snap.counter("predict_evicted_values_total").unwrap() > 0);
    // The cache hit its capacity and evicted stale entries; at quiescence
    // every completed job's entry has been invalidated.
    assert_eq!(
        snap.gauge("sched_cache_capacity").unwrap(),
        CACHE_CAP as f64
    );
    assert!(snap.gauge("sched_cache_entries").unwrap() <= CACHE_CAP as f64);
    assert!(snap.counter("sched_cache_evictions_total").unwrap() > 0);
    // Per-job engine state is bounded by retention, not by the stream.
    assert!(session.live_jobs() < 1_000, "live: {}", session.live_jobs());
}

/// Always-on bounded-memory soak (small enough for debug builds).
#[test]
fn serve_soak_small_stays_bounded() {
    soak(400);
}

/// The full 100k-job soak (release only; ~60k scheduling cycles).
#[test]
#[cfg_attr(debug_assertions, ignore = "release-mode soak: run with --release")]
fn serve_soak_100k_jobs_stays_bounded() {
    soak(100_000);
}

/// Restart equivalence at scale: streaming N jobs, snapshotting at an idle
/// gap, and resuming in a fresh session must reproduce the uninterrupted
/// run's summary (including the outcome digest) and its stable metrics
/// digest exactly.
#[test]
fn serve_snapshot_restore_is_equivalent_at_scale() {
    let total = 1_200u64;
    let mut rng = StdRng::seed_from_u64(0x00d1_e5e1_c0de);
    let mut jobs = Vec::new();
    let mut t = 0.0;
    for id in 0..total {
        if id % BURST as u64 == 0 {
            t += BURST_GAP;
        }
        // Idle gap at the halfway point: long enough for every earlier job
        // to finish and retire (runtime ≤ 60 s ≪ gap, retention 120 s).
        if id == total / 2 {
            t += 3_600.0;
        }
        jobs.push(wire_job(&mut rng, id, t));
    }
    let stream = |session: &mut ServeSession, sched: &mut ThreeSigmaScheduler, jobs: &[JobSpec]| {
        for spec in jobs {
            session.pump_until(spec.submit_time, sched).expect("pump");
            session.submit(spec.clone()).expect("accepted");
        }
    };
    let finish = |mut session: ServeSession,
                  sched: &mut ThreeSigmaScheduler,
                  recorder: &Recorder|
     -> (ServeSummary, u64) {
        session.drain(f64::INFINITY, sched).expect("drains");
        (session.summary(), recorder.snapshot().stable_digest())
    };

    // Uninterrupted run.
    let rec_a = Recorder::enabled();
    let (mut session_a, mut sched_a) = build(&rec_a);
    stream(&mut session_a, &mut sched_a, &jobs);
    let (summary_a, digest_a) = finish(session_a, &mut sched_a, &rec_a);

    // Interrupted run: part 1, quiescent snapshot, restore, part 2.
    let (part1, part2) = jobs.split_at(total as usize / 2);
    let rec_b = Recorder::enabled();
    let (mut session_b, mut sched_b) = build(&rec_b);
    stream(&mut session_b, &mut sched_b, part1);
    session_b
        .drain(f64::INFINITY, &mut sched_b)
        .expect("drains");
    let engine_snap = session_b.snapshot().expect("quiescent");
    let sched_snap = sched_b.serve_snapshot();
    drop((session_b, sched_b, rec_b));

    let rec_c = Recorder::enabled();
    let (_, mut sched_c) = build(&rec_c);
    sched_c.serve_restore(sched_snap).expect("sched restores");
    let serve_cfg = ServeConfig {
        cycle_interval: 2.0,
        retention: 120.0,
        ..ServeConfig::default()
    };
    let mut session_c =
        ServeSession::restore(ClusterSpec::uniform(8, 32), serve_cfg, &rec_c, &engine_snap)
            .expect("session restores");
    stream(&mut session_c, &mut sched_c, part2);
    let (summary_c, digest_c) = finish(session_c, &mut sched_c, &rec_c);

    assert_eq!(summary_a, summary_c, "summary (incl. digest) must match");
    assert_eq!(
        digest_a, digest_c,
        "stable metrics digest must survive snapshot/restore"
    );
}
