//! Runs the full checked-in seed corpus through the harness.
//!
//! Ignored in debug builds (the unoptimized MILP solver makes a 25-seed
//! campaign take many minutes); CI covers the corpus in release via the
//! `simtest` job (`cargo run --release -p threesigma-cli -- simtest`), and
//! locally `cargo test --release -p threesigma-simtest -- --include-ignored`
//! runs it directly.

use threesigma_simtest::{corpus_seeds, run_seed, run_seed_with, SeedOverrides};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run in release or via the simtest CLI"
)]
fn every_corpus_seed_passes() {
    for seed in corpus_seeds() {
        let report = run_seed(seed);
        assert!(
            report.passed(),
            "FAILING SEED: {seed}\nreplay: cargo run --release -p threesigma-cli -- simtest --seed {seed}\n{}",
            report.render()
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run in release or via the simtest CLI"
)]
fn every_corpus_seed_is_deterministic_across_runs() {
    // Two full in-process runs of the same seed must render byte-identical
    // reports (the render ends in its own FNV digest, so equal strings mean
    // equal digests). This is the guard the determinism lints exist to
    // protect: any HashMap-order or wall-clock leak into a decision path
    // shows up here as a digest mismatch.
    for seed in corpus_seeds() {
        let first = run_seed(seed).render();
        let second = run_seed(seed).render();
        assert_eq!(
            first, second,
            "SEED {seed} DIVERGED between two in-process runs\nfirst:\n{first}\nsecond:\n{second}"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run in release or via the simtest CLI"
)]
fn every_corpus_seed_is_deterministic_across_shard_counts() {
    // Sharding the decide stage is a pure parallelism knob: work is split
    // deterministically and merged back in shard order before anything
    // order-sensitive happens, so the rendered report — digest line
    // included — must be byte-identical at every shard count. A mismatch
    // here means shard boundaries leaked into scheduling decisions.
    for seed in corpus_seeds() {
        let baseline = run_seed(seed).render();
        for shards in [2usize, 8] {
            let sharded = run_seed_with(
                seed,
                SeedOverrides {
                    shards: Some(shards),
                    ..SeedOverrides::default()
                },
            )
            .render();
            assert_eq!(
                baseline, sharded,
                "SEED {seed} DIVERGED at {shards} shards\nbaseline:\n{baseline}\nsharded:\n{sharded}"
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run in release or via the simtest CLI"
)]
fn every_corpus_seed_is_identical_with_incremental_solving_off() {
    // The incremental tier-2 path only short-circuits a solve when the
    // model, warm start, and budgets are bit-identical to the previous
    // cycle's AND that solve ran to proven optimality — in which case the
    // cached solution IS the solution a fresh solve would produce. So
    // disabling the cache must not move a single byte of the report, at
    // any shard count. A mismatch means the reuse contract leaked an
    // unproven or stale solution into a scheduling decision.
    for seed in corpus_seeds() {
        let baseline = run_seed(seed).render();
        for shards in [1usize, 2, 8] {
            let replay = run_seed_with(
                seed,
                SeedOverrides {
                    shards: Some(shards),
                    no_incremental: true,
                    ..SeedOverrides::default()
                },
            )
            .render();
            assert_eq!(
                baseline, replay,
                "SEED {seed} DIVERGED with incremental solving off at {shards} shards\n\
                 baseline:\n{baseline}\nreplay:\n{replay}"
            );
        }
    }
}
