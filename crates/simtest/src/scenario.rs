//! Seeded scenario generation: the stress regimes of the campaign.
//!
//! A [`Scenario`] is everything one simulation run needs — cluster shape,
//! job trace, fault script, retry policy, optional cycle budget, and (for
//! the adversarial profile) an injected estimate map — derived
//! deterministically from a single `u64` seed via the same xoshiro
//! `StdRng` the engine uses. The seven [`Profile`]s target the regimes the
//! paper's mis-estimation handling exists for: burstiness, heavy-tailed
//! runtimes, adversarial over/under-estimates, preemption churn, capacity
//! loss underneath the scheduler, abrupt node crashes with job retries,
//! and sustained overload that forces the degradation governor up its
//! ladder.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use threesigma_cluster::{FaultEvent, JobId, JobKind, JobSpec, PartitionId, RetryPolicy};
use threesigma_histogram::RuntimeDistribution;

/// The stress regime a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Synchronized arrival bursts that spike queue depth.
    Bursty,
    /// Pareto-tailed true runtimes (a few jobs dominate machine-time).
    HeavyTail,
    /// Injected point estimates off by up to 8× in either direction.
    Adversarial,
    /// Long best-effort background plus waves of tight-deadline SLO jobs,
    /// forcing preemption churn and requeues.
    PreemptionStorm,
    /// Partition capacity loss and restore while jobs are running.
    PartitionFaults,
    /// Abrupt node crashes and targeted task kills: running gangs die
    /// mid-flight and cycle through the retry state machine.
    NodeCrashes,
    /// Arrival rate sized to exceed the per-cycle work-unit budget, forcing
    /// the degradation governor up the ladder (and back down as the
    /// backlog drains).
    Overload,
}

/// All profiles, in the order seeds cycle through them.
pub const PROFILES: [Profile; 7] = [
    Profile::Bursty,
    Profile::HeavyTail,
    Profile::Adversarial,
    Profile::PreemptionStorm,
    Profile::PartitionFaults,
    Profile::NodeCrashes,
    Profile::Overload,
];

impl Profile {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Bursty => "bursty",
            Profile::HeavyTail => "heavy-tail",
            Profile::Adversarial => "adversarial",
            Profile::PreemptionStorm => "preemption-storm",
            Profile::PartitionFaults => "partition-faults",
            Profile::NodeCrashes => "node-crashes",
            Profile::Overload => "overload",
        }
    }
}

/// One fully-specified simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Stress regime.
    pub profile: Profile,
    /// Rack count.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Scheduling-cycle interval in seconds.
    pub cycle_interval: f64,
    /// Drain horizon after the last arrival.
    pub drain: f64,
    /// The job trace, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Scripted capacity faults.
    pub faults: Vec<FaultEvent>,
    /// Retry policy for jobs killed by `NodeCrash`/`TaskKill` faults.
    pub retry: RetryPolicy,
    /// Deterministic per-cycle work-unit budget for the 3σSched degradation
    /// governor (`None` = unlimited, the governor never engages).
    pub cycle_budget: Option<u64>,
    /// Adversarial estimates injected into 3σSched (empty = oracle points).
    pub estimates: HashMap<JobId, RuntimeDistribution>,
}

impl Scenario {
    /// Total cluster nodes.
    pub fn total_nodes(&self) -> u32 {
        self.racks as u32 * self.nodes_per_rack
    }

    /// Expands `seed` into a scenario. The profile rotates with the seed so
    /// a contiguous seed range covers every regime.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce9_a51c_0ffe_e000);
        let profile = PROFILES[(seed % PROFILES.len() as u64) as usize];
        let mut racks = 2 + (rng.random::<u32>() % 3) as usize; // 2..=4
        let mut nodes_per_rack = 4 + rng.random::<u32>() % 5; // 4..=8
        if profile == Profile::Overload {
            // A small cluster keeps the backlog (and with it the per-cycle
            // option-enumeration cost) high for hundreds of seconds.
            racks = 2;
            nodes_per_rack = 4;
        }
        let total = racks as u32 * nodes_per_rack;
        let cycle_interval = 5.0;
        let mut jobs = Vec::new();
        let mut faults = Vec::new();
        let mut estimates = HashMap::new();
        let mut retry = RetryPolicy::default();
        let mut cycle_budget = None;
        match profile {
            Profile::Bursty => {
                let bursts = 3 + rng.random::<u32>() % 3;
                let mut id = 1u64;
                for b in 0..bursts {
                    let at = b as f64 * (40.0 + uniform(&mut rng, 0.0, 40.0));
                    let width = 6 + rng.random::<u32>() % 8;
                    for _ in 0..width {
                        jobs.push(random_job(&mut rng, id, at, total, 20.0, 180.0, 1.0, 2.0));
                        id += 1;
                    }
                }
            }
            Profile::HeavyTail => {
                let n = 35 + rng.random::<u32>() % 15;
                let alpha = uniform(&mut rng, 0.9, 1.6);
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 1.0, 15.0);
                    // Pareto via inverse transform, capped so the drain
                    // horizon stays bounded.
                    let u = rng.random::<f64>().max(1e-9);
                    let runtime = (12.0 * u.powf(-1.0 / alpha)).min(2500.0);
                    let mut job = random_job(&mut rng, id, at, total, runtime, runtime, 1.5, 3.0);
                    job.duration = runtime;
                    jobs.push(job);
                }
            }
            Profile::Adversarial => {
                let n = 30 + rng.random::<u32>() % 15;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 2.0, 12.0);
                    let job = random_job(&mut rng, id, at, total, 30.0, 300.0, 1.0, 2.5);
                    // Mis-estimate by a log-uniform factor in [1/8, 8].
                    let factor = 2f64.powf(uniform(&mut rng, -3.0, 3.0));
                    estimates.insert(
                        job.id,
                        RuntimeDistribution::point((job.duration * factor).max(1.0)),
                    );
                    jobs.push(job);
                }
            }
            Profile::PreemptionStorm => {
                let mut id = 1u64;
                // Background: enough long best-effort gangs to fill the
                // cluster early.
                let background = 1 + total / 3;
                for _ in 0..background {
                    let tasks = 1 + rng.random::<u32>() % 4;
                    jobs.push(JobSpec::new(
                        id,
                        uniform(&mut rng, 0.0, 10.0),
                        tasks.min(total),
                        uniform(&mut rng, 300.0, 700.0),
                        JobKind::BestEffort,
                    ));
                    id += 1;
                }
                // Storm: waves of tight-deadline SLO jobs.
                let waves = 3 + rng.random::<u32>() % 3;
                for w in 0..waves {
                    let at = 30.0 + w as f64 * uniform(&mut rng, 30.0, 60.0);
                    for _ in 0..(4 + rng.random::<u32>() % 5) {
                        let tasks = (1 + rng.random::<u32>() % 4).min(total);
                        let runtime = uniform(&mut rng, 20.0, 90.0);
                        let slack = uniform(&mut rng, 0.2, 0.6);
                        jobs.push(
                            JobSpec::new(
                                id,
                                at,
                                tasks,
                                runtime,
                                JobKind::Slo {
                                    deadline: at + runtime * (1.0 + slack),
                                },
                            )
                            .with_weight(8.0),
                        );
                        id += 1;
                    }
                }
            }
            Profile::PartitionFaults => {
                let n = 30 + rng.random::<u32>() % 15;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 2.0, 12.0);
                    jobs.push(random_job(&mut rng, id, at, total, 40.0, 250.0, 1.2, 2.5));
                }
                let hits = 1 + rng.random::<u32>() % 3;
                for _ in 0..hits {
                    let partition = PartitionId((rng.random::<u32>() as usize) % racks);
                    let nodes = 1 + rng.random::<u32>() % nodes_per_rack;
                    let down_at = uniform(&mut rng, 30.0, 200.0);
                    faults.push(FaultEvent::PartitionDown {
                        at: down_at,
                        partition,
                        nodes,
                    });
                    // Most outages recover; some last to the end of the run.
                    if rng.random::<f64>() < 0.8 {
                        faults.push(FaultEvent::PartitionUp {
                            at: down_at + uniform(&mut rng, 60.0, 300.0),
                            partition,
                            nodes,
                        });
                    }
                }
            }
            Profile::NodeCrashes => {
                // Lightly loaded on purpose: this regime stresses kill /
                // retry / censoring semantics, not contention, and the
                // aimed TaskKills below assume jobs start within a cycle
                // or two of submission (small gangs, ~50% utilization).
                let n = 18 + rng.random::<u32>() % 8;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 15.0, 30.0);
                    let tasks = 1 + rng.random::<u32>() % 2;
                    let runtime = uniform(&mut rng, 40.0, 120.0);
                    let kind = if rng.random::<f64>() < 0.4 {
                        JobKind::Slo {
                            deadline: at + runtime * uniform(&mut rng, 3.0, 6.0),
                        }
                    } else {
                        JobKind::BestEffort
                    };
                    jobs.push(JobSpec::new(id, at, tasks, runtime, kind));
                }
                // Abrupt crashes: free nodes absorb what they can, then
                // running gangs on the partition die and enter retry.
                let crashes = 2 + rng.random::<u32>() % 3;
                for _ in 0..crashes {
                    let partition = PartitionId((rng.random::<u32>() as usize) % racks);
                    let nodes = 1 + rng.random::<u32>() % (nodes_per_rack / 2).max(1);
                    let crash_at = uniform(&mut rng, 30.0, 250.0);
                    faults.push(FaultEvent::NodeCrash {
                        at: crash_at,
                        partition,
                        nodes,
                    });
                    // Crashed nodes usually come back (recovery reuses the
                    // graceful restore path).
                    if rng.random::<f64>() < 0.7 {
                        faults.push(FaultEvent::PartitionUp {
                            at: crash_at + uniform(&mut rng, 60.0, 240.0),
                            partition,
                            nodes,
                        });
                    }
                }
                // Targeted task-level failures, aimed inside the victim's
                // expected execution window (jobs start within a cycle or
                // two of submission on this lightly-loaded cluster). Kills
                // of jobs that are not running at `at` are engine no-ops,
                // which is fine — queueing delay only shifts the window.
                // Victims come from the front of the trace so the retried
                // attempt still completes well inside the drain horizon.
                let kills = 3 + rng.random::<u32>() % 4;
                for _ in 0..kills {
                    let idx = (rng.random::<u64>() % (n as u64 * 2 / 3).max(1)) as usize;
                    let frac = uniform(&mut rng, 0.3, 0.7);
                    faults.push(FaultEvent::TaskKill {
                        at: jobs[idx].submit_time
                            + 2.0 * cycle_interval
                            + frac * jobs[idx].duration,
                        job: jobs[idx].id,
                    });
                }
                // Short saturating backoff so retries (and retry-budget
                // exhaustion) happen well inside the drain horizon.
                retry = RetryPolicy {
                    max_retries: 2,
                    backoff_base: 4.0,
                    backoff_cap: 64.0,
                };
            }
            Profile::Overload => {
                // A steady torrent of small jobs on the shrunken cluster:
                // queue depth quickly exceeds what the MILP path can value
                // within the budget below, then drains in a long tail of
                // cheap cycles so hysteresis can step the governor back to
                // level 0.
                let n = 80 + rng.random::<u32>() % 30;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 0.5, 1.5);
                    let tasks = 1 + rng.random::<u32>() % 2;
                    let runtime = uniform(&mut rng, 15.0, 60.0);
                    let kind = if rng.random::<f64>() < 0.4 {
                        JobKind::Slo {
                            // Generous slack: misses here should come from
                            // backlog, not from an impossible deadline.
                            deadline: at + runtime * uniform(&mut rng, 8.0, 16.0),
                        }
                    } else {
                        JobKind::BestEffort
                    };
                    jobs.push(JobSpec::new(id, at, tasks, runtime, kind));
                }
                // Work units = options valued + branch-and-bound nodes per
                // cycle; level 0 with a deep queue enumerates well over
                // this, while the level-1 caps derived from it provably
                // fit (see `sched::threesigma`).
                cycle_budget = Some(250);
            }
        }
        Scenario {
            seed,
            profile,
            racks,
            nodes_per_rack,
            cycle_interval,
            drain: 1800.0,
            jobs,
            faults,
            retry,
            cycle_budget,
            estimates,
        }
    }

    /// The crafted contention-free trace behind the dominance oracle: with
    /// perfect point estimates and no resource contention, 3σSched must not
    /// miss SLOs that backfill meets. Demand never exceeds half the
    /// cluster and every deadline leaves ≥ 4× runtime of slack plus a
    /// cycle-quantization cushion.
    pub fn no_contention(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00d0_51ab_1e00_0000);
        let racks = 2usize;
        let nodes_per_rack = 8u32;
        let mut jobs = Vec::new();
        let mut at = 0.0;
        for id in 1..=8u64 {
            at += uniform(&mut rng, 45.0, 90.0);
            let tasks = 1 + rng.random::<u32>() % 4;
            let runtime = uniform(&mut rng, 30.0, 120.0);
            jobs.push(JobSpec::new(
                id,
                at,
                tasks,
                runtime,
                JobKind::Slo {
                    deadline: at + 4.0 * runtime + 120.0,
                },
            ));
        }
        for id in 9..=10u64 {
            at += uniform(&mut rng, 10.0, 30.0);
            jobs.push(JobSpec::new(
                id,
                at,
                1 + rng.random::<u32>() % 2,
                uniform(&mut rng, 20.0, 60.0),
                JobKind::BestEffort,
            ));
        }
        Scenario {
            seed,
            profile: Profile::Bursty, // unused label; trace is crafted
            racks,
            nodes_per_rack,
            cycle_interval: 5.0,
            drain: 1800.0,
            jobs,
            faults: Vec::new(),
            retry: RetryPolicy::default(),
            cycle_budget: None,
            estimates: HashMap::new(),
        }
    }
}

/// Uniform draw in `[lo, hi)`.
fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + rng.random::<f64>() * (hi - lo)
}

/// A random job: mixed SLO/BE, sized for the cluster, with occasional rack
/// preference (slowdown 1.5× off-preferred).
#[allow(clippy::too_many_arguments)]
fn random_job(
    rng: &mut StdRng,
    id: u64,
    submit: f64,
    total_nodes: u32,
    min_runtime: f64,
    max_runtime: f64,
    min_slack: f64,
    max_slack: f64,
) -> JobSpec {
    let tasks = (1 + rng.random::<u32>() % (total_nodes / 3).max(1)).min(total_nodes);
    let runtime = if max_runtime > min_runtime {
        uniform(rng, min_runtime, max_runtime)
    } else {
        min_runtime
    };
    let kind = if rng.random::<f64>() < 0.5 {
        JobKind::Slo {
            deadline: submit + runtime * (1.0 + uniform(rng, min_slack, max_slack)),
        }
    } else {
        JobKind::BestEffort
    };
    let mut job = JobSpec::new(id, submit, tasks, runtime, kind);
    if rng.random::<f64>() < 0.3 {
        job = job.with_preference(vec![PartitionId(0)], 1.5);
    }
    if job.kind.is_slo() {
        job = job.with_weight(uniform(rng, 4.0, 10.0));
    }
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 2, 3, 4, 17, 12345] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.jobs.len(), b.jobs.len());
            for (x, y) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.submit_time, y.submit_time);
                assert_eq!(x.duration, y.duration);
                assert_eq!(x.tasks, y.tasks);
            }
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn profiles_rotate_with_seed() {
        let names: Vec<&str> = (0..7)
            .map(|s| Scenario::generate(s).profile.name())
            .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 7, "seven consecutive seeds → seven profiles");
    }

    #[test]
    fn jobs_fit_the_cluster() {
        for seed in 0..28u64 {
            let s = Scenario::generate(seed);
            assert!(!s.jobs.is_empty());
            for j in &s.jobs {
                assert!(j.tasks >= 1 && j.tasks <= s.total_nodes(), "seed {seed}");
                assert!(j.duration > 0.0 && j.duration.is_finite());
                assert!(j.submit_time >= 0.0);
            }
            for f in &s.faults {
                if let Some(p) = f.partition() {
                    assert!(p.index() < s.racks);
                }
            }
        }
    }

    #[test]
    fn node_crashes_profile_scripts_kills() {
        // Profile index 5 = node-crashes.
        let s = Scenario::generate(5);
        assert_eq!(s.profile, Profile::NodeCrashes);
        assert!(s
            .faults
            .iter()
            .any(|f| matches!(f, FaultEvent::NodeCrash { .. })));
        assert!(s
            .faults
            .iter()
            .any(|f| matches!(f, FaultEvent::TaskKill { .. })));
        assert!(s.retry.max_retries > 0, "kills must be retryable");
        // Kill targets reference jobs that exist in the trace.
        let n = s.jobs.len() as u64;
        for f in &s.faults {
            if let FaultEvent::TaskKill { job, .. } = f {
                assert!(job.0 >= 1 && job.0 <= n);
            }
        }
    }

    #[test]
    fn overload_profile_sets_a_cycle_budget() {
        // Profile index 6 = overload.
        let s = Scenario::generate(6);
        assert_eq!(s.profile, Profile::Overload);
        let budget = s.cycle_budget.expect("overload runs under a budget");
        // Deep enough backlog that level-0 enumeration alone (≥ 8 valued
        // options per pending job) must overshoot the budget.
        assert!(s.jobs.len() as u64 * 8 > 2 * budget);
        // Small cluster so the backlog actually builds up.
        assert!(s.total_nodes() <= 8);
        // Arrivals are monotone (engine submission order).
        for w in s.jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn adversarial_profile_injects_estimates() {
        // Profile index 2 = adversarial.
        let s = Scenario::generate(2);
        assert_eq!(s.profile, Profile::Adversarial);
        assert_eq!(s.estimates.len(), s.jobs.len());
    }

    #[test]
    fn no_contention_trace_is_underloaded() {
        let s = Scenario::no_contention(7);
        let total = s.total_nodes();
        for j in &s.jobs {
            assert!(j.tasks <= total / 2);
            if let JobKind::Slo { deadline } = j.kind {
                assert!(deadline >= j.submit_time + 4.0 * j.duration);
            }
        }
    }
}
