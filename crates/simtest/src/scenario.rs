//! Seeded scenario generation: the stress regimes of the campaign.
//!
//! A [`Scenario`] is everything one simulation run needs — cluster shape,
//! job trace, fault script, and (for the adversarial profile) an injected
//! estimate map — derived deterministically from a single `u64` seed via
//! the same xoshiro `StdRng` the engine uses. The five [`Profile`]s target
//! the regimes the paper's mis-estimation handling exists for: burstiness,
//! heavy-tailed runtimes, adversarial over/under-estimates, preemption
//! churn, and capacity loss underneath the scheduler.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use threesigma_cluster::{FaultEvent, JobId, JobKind, JobSpec, PartitionId};
use threesigma_histogram::RuntimeDistribution;

/// The stress regime a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Synchronized arrival bursts that spike queue depth.
    Bursty,
    /// Pareto-tailed true runtimes (a few jobs dominate machine-time).
    HeavyTail,
    /// Injected point estimates off by up to 8× in either direction.
    Adversarial,
    /// Long best-effort background plus waves of tight-deadline SLO jobs,
    /// forcing preemption churn and requeues.
    PreemptionStorm,
    /// Partition capacity loss and restore while jobs are running.
    PartitionFaults,
}

/// All profiles, in the order seeds cycle through them.
pub const PROFILES: [Profile; 5] = [
    Profile::Bursty,
    Profile::HeavyTail,
    Profile::Adversarial,
    Profile::PreemptionStorm,
    Profile::PartitionFaults,
];

impl Profile {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Bursty => "bursty",
            Profile::HeavyTail => "heavy-tail",
            Profile::Adversarial => "adversarial",
            Profile::PreemptionStorm => "preemption-storm",
            Profile::PartitionFaults => "partition-faults",
        }
    }
}

/// One fully-specified simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Stress regime.
    pub profile: Profile,
    /// Rack count.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: u32,
    /// Scheduling-cycle interval in seconds.
    pub cycle_interval: f64,
    /// Drain horizon after the last arrival.
    pub drain: f64,
    /// The job trace, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Scripted capacity faults.
    pub faults: Vec<FaultEvent>,
    /// Adversarial estimates injected into 3σSched (empty = oracle points).
    pub estimates: HashMap<JobId, RuntimeDistribution>,
}

impl Scenario {
    /// Total cluster nodes.
    pub fn total_nodes(&self) -> u32 {
        self.racks as u32 * self.nodes_per_rack
    }

    /// Expands `seed` into a scenario. The profile rotates with the seed so
    /// a contiguous seed range covers every regime.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce9_a51c_0ffe_e000);
        let profile = PROFILES[(seed % PROFILES.len() as u64) as usize];
        let racks = 2 + (rng.random::<u32>() % 3) as usize; // 2..=4
        let nodes_per_rack = 4 + rng.random::<u32>() % 5; // 4..=8
        let total = racks as u32 * nodes_per_rack;
        let cycle_interval = 5.0;
        let mut jobs = Vec::new();
        let mut faults = Vec::new();
        let mut estimates = HashMap::new();
        match profile {
            Profile::Bursty => {
                let bursts = 3 + rng.random::<u32>() % 3;
                let mut id = 1u64;
                for b in 0..bursts {
                    let at = b as f64 * (40.0 + uniform(&mut rng, 0.0, 40.0));
                    let width = 6 + rng.random::<u32>() % 8;
                    for _ in 0..width {
                        jobs.push(random_job(&mut rng, id, at, total, 20.0, 180.0, 1.0, 2.0));
                        id += 1;
                    }
                }
            }
            Profile::HeavyTail => {
                let n = 35 + rng.random::<u32>() % 15;
                let alpha = uniform(&mut rng, 0.9, 1.6);
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 1.0, 15.0);
                    // Pareto via inverse transform, capped so the drain
                    // horizon stays bounded.
                    let u = rng.random::<f64>().max(1e-9);
                    let runtime = (12.0 * u.powf(-1.0 / alpha)).min(2500.0);
                    let mut job = random_job(&mut rng, id, at, total, runtime, runtime, 1.5, 3.0);
                    job.duration = runtime;
                    jobs.push(job);
                }
            }
            Profile::Adversarial => {
                let n = 30 + rng.random::<u32>() % 15;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 2.0, 12.0);
                    let job = random_job(&mut rng, id, at, total, 30.0, 300.0, 1.0, 2.5);
                    // Mis-estimate by a log-uniform factor in [1/8, 8].
                    let factor = 2f64.powf(uniform(&mut rng, -3.0, 3.0));
                    estimates.insert(
                        job.id,
                        RuntimeDistribution::point((job.duration * factor).max(1.0)),
                    );
                    jobs.push(job);
                }
            }
            Profile::PreemptionStorm => {
                let mut id = 1u64;
                // Background: enough long best-effort gangs to fill the
                // cluster early.
                let background = 1 + total / 3;
                for _ in 0..background {
                    let tasks = 1 + rng.random::<u32>() % 4;
                    jobs.push(JobSpec::new(
                        id,
                        uniform(&mut rng, 0.0, 10.0),
                        tasks.min(total),
                        uniform(&mut rng, 300.0, 700.0),
                        JobKind::BestEffort,
                    ));
                    id += 1;
                }
                // Storm: waves of tight-deadline SLO jobs.
                let waves = 3 + rng.random::<u32>() % 3;
                for w in 0..waves {
                    let at = 30.0 + w as f64 * uniform(&mut rng, 30.0, 60.0);
                    for _ in 0..(4 + rng.random::<u32>() % 5) {
                        let tasks = (1 + rng.random::<u32>() % 4).min(total);
                        let runtime = uniform(&mut rng, 20.0, 90.0);
                        let slack = uniform(&mut rng, 0.2, 0.6);
                        jobs.push(
                            JobSpec::new(
                                id,
                                at,
                                tasks,
                                runtime,
                                JobKind::Slo {
                                    deadline: at + runtime * (1.0 + slack),
                                },
                            )
                            .with_weight(8.0),
                        );
                        id += 1;
                    }
                }
            }
            Profile::PartitionFaults => {
                let n = 30 + rng.random::<u32>() % 15;
                let mut at = 0.0;
                for id in 1..=n as u64 {
                    at += uniform(&mut rng, 2.0, 12.0);
                    jobs.push(random_job(&mut rng, id, at, total, 40.0, 250.0, 1.2, 2.5));
                }
                let hits = 1 + rng.random::<u32>() % 3;
                for _ in 0..hits {
                    let partition = PartitionId((rng.random::<u32>() as usize) % racks);
                    let nodes = 1 + rng.random::<u32>() % nodes_per_rack;
                    let down_at = uniform(&mut rng, 30.0, 200.0);
                    faults.push(FaultEvent::PartitionDown {
                        at: down_at,
                        partition,
                        nodes,
                    });
                    // Most outages recover; some last to the end of the run.
                    if rng.random::<f64>() < 0.8 {
                        faults.push(FaultEvent::PartitionUp {
                            at: down_at + uniform(&mut rng, 60.0, 300.0),
                            partition,
                            nodes,
                        });
                    }
                }
            }
        }
        Scenario {
            seed,
            profile,
            racks,
            nodes_per_rack,
            cycle_interval,
            drain: 1800.0,
            jobs,
            faults,
            estimates,
        }
    }

    /// The crafted contention-free trace behind the dominance oracle: with
    /// perfect point estimates and no resource contention, 3σSched must not
    /// miss SLOs that backfill meets. Demand never exceeds half the
    /// cluster and every deadline leaves ≥ 4× runtime of slack plus a
    /// cycle-quantization cushion.
    pub fn no_contention(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00d0_51ab_1e00_0000);
        let racks = 2usize;
        let nodes_per_rack = 8u32;
        let mut jobs = Vec::new();
        let mut at = 0.0;
        for id in 1..=8u64 {
            at += uniform(&mut rng, 45.0, 90.0);
            let tasks = 1 + rng.random::<u32>() % 4;
            let runtime = uniform(&mut rng, 30.0, 120.0);
            jobs.push(JobSpec::new(
                id,
                at,
                tasks,
                runtime,
                JobKind::Slo {
                    deadline: at + 4.0 * runtime + 120.0,
                },
            ));
        }
        for id in 9..=10u64 {
            at += uniform(&mut rng, 10.0, 30.0);
            jobs.push(JobSpec::new(
                id,
                at,
                1 + rng.random::<u32>() % 2,
                uniform(&mut rng, 20.0, 60.0),
                JobKind::BestEffort,
            ));
        }
        Scenario {
            seed,
            profile: Profile::Bursty, // unused label; trace is crafted
            racks,
            nodes_per_rack,
            cycle_interval: 5.0,
            drain: 1800.0,
            jobs,
            faults: Vec::new(),
            estimates: HashMap::new(),
        }
    }
}

/// Uniform draw in `[lo, hi)`.
fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + rng.random::<f64>() * (hi - lo)
}

/// A random job: mixed SLO/BE, sized for the cluster, with occasional rack
/// preference (slowdown 1.5× off-preferred).
#[allow(clippy::too_many_arguments)]
fn random_job(
    rng: &mut StdRng,
    id: u64,
    submit: f64,
    total_nodes: u32,
    min_runtime: f64,
    max_runtime: f64,
    min_slack: f64,
    max_slack: f64,
) -> JobSpec {
    let tasks = (1 + rng.random::<u32>() % (total_nodes / 3).max(1)).min(total_nodes);
    let runtime = if max_runtime > min_runtime {
        uniform(rng, min_runtime, max_runtime)
    } else {
        min_runtime
    };
    let kind = if rng.random::<f64>() < 0.5 {
        JobKind::Slo {
            deadline: submit + runtime * (1.0 + uniform(rng, min_slack, max_slack)),
        }
    } else {
        JobKind::BestEffort
    };
    let mut job = JobSpec::new(id, submit, tasks, runtime, kind);
    if rng.random::<f64>() < 0.3 {
        job = job.with_preference(vec![PartitionId(0)], 1.5);
    }
    if job.kind.is_slo() {
        job = job.with_weight(uniform(rng, 4.0, 10.0));
    }
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 2, 3, 4, 17, 12345] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.jobs.len(), b.jobs.len());
            for (x, y) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.submit_time, y.submit_time);
                assert_eq!(x.duration, y.duration);
                assert_eq!(x.tasks, y.tasks);
            }
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn profiles_rotate_with_seed() {
        let names: Vec<&str> = (0..5)
            .map(|s| Scenario::generate(s).profile.name())
            .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 5, "five consecutive seeds → five profiles");
    }

    #[test]
    fn jobs_fit_the_cluster() {
        for seed in 0..25u64 {
            let s = Scenario::generate(seed);
            assert!(!s.jobs.is_empty());
            for j in &s.jobs {
                assert!(j.tasks >= 1 && j.tasks <= s.total_nodes(), "seed {seed}");
                assert!(j.duration > 0.0 && j.duration.is_finite());
                assert!(j.submit_time >= 0.0);
            }
            for f in &s.faults {
                assert!(f.partition().index() < s.racks);
            }
        }
    }

    #[test]
    fn adversarial_profile_injects_estimates() {
        // Profile index 2 = adversarial.
        let s = Scenario::generate(2);
        assert_eq!(s.profile, Profile::Adversarial);
        assert_eq!(s.estimates.len(), s.jobs.len());
    }

    #[test]
    fn no_contention_trace_is_underloaded() {
        let s = Scenario::no_contention(7);
        let total = s.total_nodes();
        for j in &s.jobs {
            assert!(j.tasks <= total / 2);
            if let JobKind::Slo { deadline } = j.kind {
                assert!(deadline >= j.submit_time + 4.0 * j.duration);
            }
        }
    }
}
