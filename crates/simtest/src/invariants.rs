//! The invariant registry: what is checked after every scheduling cycle.
//!
//! Two vantage points cover the whole loop:
//!
//! * [`InvariantChecker`] is a [`CycleObserver`] fed engine *ground truth*
//!   ([`EngineSnapshot`]) after each cycle — capacity conservation under
//!   fault injection, job conservation under preemption/requeue, clock
//!   monotonicity, terminal-state immutability, per-cycle metrics sanity,
//!   and `DiscreteDist` CDF/survival consistency probes.
//! * [`CheckedScheduler`] wraps the scheduler under test and re-validates
//!   every extracted [`SchedulingDecision`] against the raw capacity rows
//!   of the view it was derived from ([`threesigma::check_decision`]),
//!   *before* the engine applies it.
//!
//! Every check increments a named counter; violations carry the cycle time
//! and enough context to diagnose from the report alone.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use threesigma::{check_decision, DiscreteDist};
use threesigma_cluster::{
    CycleObserver, EngineSnapshot, JobOutcome, JobSpec, JobState, Metrics, RetryPolicy, Scheduler,
    SchedulingDecision, SimulationView,
};
use threesigma_obs::{Counter, Gauge, Recorder};

/// Names of every invariant checked per cycle, in report order.
pub const INVARIANTS: [&str; 13] = [
    "capacity-conservation",
    "clock-monotonic",
    "counter-consistency",
    "decision-feasibility",
    "dist-consistency",
    "elapsed-sane",
    "governor-sanity",
    "job-conservation",
    "metrics-sanity",
    "no-oversubscription",
    "retry-accounting",
    "solver-tier-sanity",
    "terminal-immutability",
];

const EPS: f64 = 1e-6;

/// Engine-side invariant checker (see module docs). Feed it to
/// [`threesigma_cluster::Engine::run_observed`]; read the verdict with
/// [`InvariantChecker::counts`] / [`InvariantChecker::violations`].
pub struct InvariantChecker {
    submit_times: Vec<f64>,
    /// Per-job probe distribution for the CDF/survival consistency checks.
    dists: Vec<DiscreteDist>,
    counts: BTreeMap<&'static str, u64>,
    violations: Vec<String>,
    last_now: f64,
    last_cycles: usize,
    /// `(state, start, finish)` at the previous cycle, for immutability.
    prev: Vec<(JobState, Option<f64>, Option<f64>)>,
    /// Per-job kill count at the previous cycle, for retry accounting.
    prev_kills: Vec<u32>,
    /// Observability counters under test, when a recorder is attached.
    probe: Option<CounterProbe>,
    /// Retry policy of the run, when known — tightens `retry-accounting`.
    retry: Option<RetryPolicy>,
    /// Per-cycle work-unit budget of the run, when the scenario set one —
    /// arms the cost-bound half of `governor-sanity`.
    budget: Option<u64>,
    /// Degradation level at the previous cycle (from the published gauge).
    last_level: Option<f64>,
    /// Solver tier at the previous cycle (from the published gauge).
    last_tier: Option<f64>,
}

/// Resolved handles to the published counters the `counter-consistency`
/// invariant cross-checks. Registration is idempotent, so resolving here
/// shares storage with the engine/scheduler handles regardless of order;
/// counters a scheduler never publishes (prio, backfill) read 0 and the
/// inequalities hold vacuously.
struct CounterProbe {
    engine_cycles: Counter,
    enumerated: Counter,
    pruned: Counter,
    placed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_lookups: Counter,
    /// Degradation-governor level gauge (`governor-sanity`). Reads 0 for
    /// schedulers without a governor.
    level: Gauge,
    /// Work-unit cost of the last cycle (`governor-sanity` budget bound).
    cost: Gauge,
    /// Solver tier of the last cycle (`solver-tier-sanity`). Reads 0 for
    /// schedulers without a MILP stage.
    tier: Gauge,
    /// Tier-2 incremental-cache reuses (`solver-tier-sanity` reuse bound).
    incremental_reuses: Counter,
    /// Scheduler cycle counter, the ceiling for `incremental_reuses`.
    sched_cycles: Counter,
}

impl CounterProbe {
    fn resolve(recorder: &Recorder) -> Self {
        let c = |name| recorder.counter(name, "simtest counter-consistency probe");
        let g = |name| recorder.gauge(name, "simtest governor-sanity probe");
        Self {
            engine_cycles: c("engine_cycles_total"),
            enumerated: c("sched_options_enumerated_total"),
            pruned: c("sched_options_pruned_total"),
            placed: c("sched_options_placed_total"),
            cache_hits: c("sched_cache_hits_total"),
            cache_misses: c("sched_cache_misses_total"),
            cache_lookups: c("sched_cache_lookups_total"),
            level: g("sched_degradation_level"),
            cost: g("sched_cycle_cost_units"),
            tier: g("sched_solver_tier"),
            incremental_reuses: c("sched_incremental_reuses_total"),
            sched_cycles: c("sched_cycles_total"),
        }
    }
}

impl InvariantChecker {
    /// A checker for a run over `jobs`.
    pub fn new(jobs: &[JobSpec]) -> Self {
        let dists = jobs
            .iter()
            .map(|j| {
                DiscreteDist::from_points(vec![
                    (j.duration * 0.5, 0.25),
                    (j.duration, 0.5),
                    (j.duration * 2.0, 0.25),
                ])
            })
            .collect();
        Self {
            submit_times: jobs.iter().map(|j| j.submit_time).collect(),
            dists,
            counts: INVARIANTS.iter().map(|n| (*n, 0)).collect(),
            violations: Vec::new(),
            last_now: f64::NEG_INFINITY,
            last_cycles: 0,
            prev: vec![(JobState::Pending, None, None); jobs.len()],
            prev_kills: vec![0; jobs.len()],
            probe: None,
            retry: None,
            budget: None,
            last_level: None,
            last_tier: None,
        }
    }

    /// Attaches the recorder whose published counters the
    /// `counter-consistency` invariant audits every cycle. Without one the
    /// invariant still ticks but passes vacuously.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.probe = Some(CounterProbe::resolve(recorder));
        self
    }

    /// Declares the retry policy the engine runs under, tightening
    /// `retry-accounting`: no outcome may ever exceed `max_retries + 1`
    /// kills, and end-of-run cancellation counts must match exactly.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Declares the per-cycle work-unit budget the scheduler runs under,
    /// arming the cost bound of `governor-sanity`: once degraded (level ≥ 1)
    /// the published cycle cost must stay within the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// Checks-performed counter per invariant (every invariant ticks every
    /// cycle).
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Records one named check; failures append a violation message.
    fn check(&mut self, name: &'static str, ok: bool, msg: impl FnOnce() -> String) {
        *self.counts.get_mut(name).expect("registered invariant") += 1;
        if !ok {
            self.violations.push(format!("[{name}] {}", msg()));
        }
    }

    /// End-of-run metrics sanity: unit ranges and machine-hour conservation
    /// against the space-time capacity of the run.
    pub fn check_final_metrics(&mut self, metrics: &Metrics, total_nodes: u32) {
        let miss = metrics.slo_miss_pct();
        let rate = metrics.completion_rate();
        let budget_hours = total_nodes as f64 * metrics.end_time / 3600.0 + EPS;
        let used = metrics.goodput_hours() + metrics.wasted_hours();
        let ok = (0.0..=100.0).contains(&miss)
            && (0.0..=1.0).contains(&rate)
            && metrics.goodput_hours() >= 0.0
            && metrics.wasted_hours() >= 0.0
            && metrics.slo_goodput_hours() + metrics.be_goodput_hours() <= budget_hours
            && used <= budget_hours
            && metrics.mean_be_latency().is_none_or(|l| l >= 0.0);
        self.check("metrics-sanity", ok, || {
            format!(
                "final metrics out of range: miss={miss} rate={rate} goodput={} wasted={} budget={}",
                metrics.goodput_hours(),
                metrics.wasted_hours(),
                budget_hours
            )
        });

        // retry-accounting (end of run): the aggregate kill counter is
        // exactly the sum of per-job kills, and every retry-budget
        // cancellation is backed by a job whose kills exceeded the budget.
        let outcome_kills: u64 = metrics.outcomes.iter().map(|o| u64::from(o.kills)).sum();
        let mut retry_ok =
            metrics.kills as u64 == outcome_kills && metrics.retry_cancellations <= metrics.kills;
        if let Some(retry) = self.retry {
            let exhausted = metrics
                .outcomes
                .iter()
                .filter(|o| o.kills > retry.max_retries)
                .count();
            retry_ok &= metrics.retry_cancellations == exhausted;
        }
        self.check("retry-accounting", retry_ok, || {
            format!(
                "final retry accounting inconsistent: kills={} sum(outcome.kills)={outcome_kills} retry_cancellations={}",
                metrics.kills, metrics.retry_cancellations
            )
        });
    }
}

impl CycleObserver for InvariantChecker {
    fn on_cycle(&mut self, s: &EngineSnapshot<'_>) {
        let now = s.now;
        let parts = s.capacity.len();

        // clock-monotonic: time never runs backwards, cycles count up by 1.
        let (last_now, last_cycles) = (self.last_now, self.last_cycles);
        self.check(
            "clock-monotonic",
            now >= last_now && s.cycles == last_cycles + 1,
            || format!("clock {last_now}→{now}, cycle {last_cycles}→{}", s.cycles),
        );
        self.last_now = now;
        self.last_cycles = s.cycles;

        // Per-partition allocation totals from the running set.
        let mut allocated = vec![0u32; parts];
        for r in &s.running {
            for (p, n) in r.allocation {
                if p.index() < parts {
                    allocated[p.index()] += n;
                }
            }
        }

        // capacity-conservation: free + allocated + offline == capacity.
        let conserved =
            (0..parts).all(|p| s.free[p] + allocated[p] + s.offline[p] == s.capacity[p]);
        self.check("capacity-conservation", conserved, || {
            format!(
                "t={now}: free={:?} allocated={allocated:?} offline={:?} capacity={:?}",
                s.free, s.offline, s.capacity
            )
        });

        // no-oversubscription: each component individually within capacity.
        let within = (0..parts).all(|p| {
            allocated[p] <= s.capacity[p]
                && s.free[p] <= s.capacity[p]
                && s.offline[p] <= s.capacity[p]
        });
        self.check("no-oversubscription", within, || {
            format!(
                "t={now}: allocated={allocated:?} exceeds capacity={:?}",
                s.capacity
            )
        });

        // job-conservation: every arrived job is in exactly one place.
        let arrived: Vec<usize> = (0..self.submit_times.len())
            .filter(|&i| self.submit_times[i] <= now + EPS)
            .collect();
        let mut where_is = vec![0u8; self.submit_times.len()]; // bitset: 1=pending 2=running
        let mut conservation_ok = true;
        for &i in s.pending {
            if where_is[i] != 0 {
                conservation_ok = false;
            }
            where_is[i] |= 1;
        }
        for r in &s.running {
            if where_is[r.idx] != 0 {
                conservation_ok = false;
            }
            where_is[r.idx] |= 2;
        }
        let mut terminal = 0usize;
        for &i in &arrived {
            let state = s.outcomes[i].state;
            match state {
                JobState::Pending => conservation_ok &= where_is[i] == 1,
                JobState::Running => conservation_ok &= where_is[i] == 2,
                JobState::Completed | JobState::Canceled => {
                    terminal += 1;
                    conservation_ok &= where_is[i] == 0;
                }
            }
        }
        conservation_ok &= arrived.len() == s.pending.len() + s.running.len() + terminal;
        self.check("job-conservation", conservation_ok, || {
            format!(
                "t={now}: {} arrived != {} pending + {} running + {terminal} terminal (or a job is in two places)",
                arrived.len(),
                s.pending.len(),
                s.running.len()
            )
        });

        // elapsed-sane: submit ≤ start ≤ now for running attempts, and
        // submit ≤ start ≤ finish ≤ now for completed jobs.
        let mut elapsed_ok = true;
        for r in &s.running {
            elapsed_ok &= r.start >= self.submit_times[r.idx] - EPS && r.start <= now + EPS;
        }
        for &i in &arrived {
            let o: &JobOutcome = &s.outcomes[i];
            if o.state == JobState::Completed {
                let (start, finish) = (o.start_time.unwrap_or(-1.0), o.finish_time.unwrap_or(-1.0));
                elapsed_ok &= start >= self.submit_times[i] - EPS
                    && finish >= start - EPS
                    && finish <= now + EPS;
            }
        }
        self.check("elapsed-sane", elapsed_ok, || {
            format!("t={now}: a job's start/finish ordering violates submit ≤ start ≤ finish ≤ now")
        });

        // terminal-immutability: terminal states and their timestamps are
        // frozen once reached.
        let mut immutable_ok = true;
        for (i, o) in s.outcomes.iter().enumerate() {
            let (pstate, pstart, pfinish) = self.prev[i];
            if matches!(pstate, JobState::Completed | JobState::Canceled) {
                immutable_ok &=
                    o.state == pstate && o.start_time == pstart && o.finish_time == pfinish;
            }
            self.prev[i] = (o.state, o.start_time, o.finish_time);
        }
        self.check("terminal-immutability", immutable_ok, || {
            format!("t={now}: a terminal job changed state or timestamps")
        });

        // retry-accounting: per-job kill counts only ever grow, and (when
        // the run's retry policy is declared) never exceed the retry budget
        // of `max_retries + 1` killed attempts. Together with
        // job-conservation above this is the "killed job is never lost"
        // guarantee: a killed job re-pends (and stays accounted) or is
        // cancelled (terminal), never vanishes.
        let kill_cap = self.retry.map(|r| r.max_retries + 1);
        let mut retry_ok = true;
        for (i, o) in s.outcomes.iter().enumerate() {
            retry_ok &= o.kills >= self.prev_kills[i];
            if let Some(cap) = kill_cap {
                retry_ok &= o.kills <= cap;
            }
            self.prev_kills[i] = o.kills;
        }
        self.check("retry-accounting", retry_ok, || {
            format!("t={now}: a job's kill count shrank or exceeded the retry budget {kill_cap:?}")
        });

        // governor-sanity: the published degradation level is an integer in
        // {0, 1, 2}, moves at most one step per cycle, and — once degraded —
        // the published cycle cost respects the declared work-unit budget.
        // Schedulers without a governor never touch the gauge, so it reads a
        // constant 0 and the checks hold vacuously.
        let (governor_ok, detail) = match &self.probe {
            Some(p) => {
                let level = p.level.get();
                let cost = p.cost.get();
                let prev = self.last_level;
                let mut ok = level.fract() == 0.0 && (0.0..=2.0).contains(&level);
                if let Some(last) = prev {
                    ok &= (level - last).abs() <= 1.0;
                }
                if let (Some(budget), true) = (self.budget, level >= 1.0) {
                    ok &= cost <= budget as f64;
                }
                self.last_level = Some(level);
                (
                    ok,
                    format!(
                        "level={level} (prev {prev:?}) cost={cost} budget={:?}",
                        self.budget
                    ),
                )
            }
            None => (true, String::new()),
        };
        self.check("governor-sanity", governor_ok, || {
            format!("t={now}: degradation governor misbehaved: {detail}")
        });

        // solver-tier-sanity: the published solver tier is an integer in
        // {0, 1, 2}, moves at most one step per cycle (the ladder-mapped
        // tier inherits the governor's hysteresis; a pinned tier is
        // constant), and the incremental cache can never claim more reuses
        // than cycles run. Schedulers without a MILP stage leave the gauge
        // at 0, so the checks hold vacuously.
        let (tier_ok, detail) = match &self.probe {
            Some(p) => {
                let tier = p.tier.get();
                let prev = self.last_tier;
                let reuses = p.incremental_reuses.get();
                let cycles = p.sched_cycles.get();
                let mut ok = tier.fract() == 0.0 && (0.0..=2.0).contains(&tier);
                if let Some(last) = prev {
                    ok &= (tier - last).abs() <= 1.0;
                }
                ok &= reuses <= cycles;
                self.last_tier = Some(tier);
                (
                    ok,
                    format!("tier={tier} (prev {prev:?}) reuses={reuses} cycles={cycles}"),
                )
            }
            None => (true, String::new()),
        };
        self.check("solver-tier-sanity", tier_ok, || {
            format!("t={now}: solver tier misbehaved: {detail}")
        });

        // metrics-sanity: aggregate metrics stay in-unit mid-run too.
        let live = Metrics {
            outcomes: s.outcomes.to_vec(),
            end_time: now,
            cycles: s.cycles,
            preemptions: 0,
            kills: 0,
            retry_cancellations: 0,
            wasted_machine_seconds: 0.0,
        };
        let total_nodes: u32 = s.capacity.iter().sum();
        let miss = live.slo_miss_pct();
        let rate = live.completion_rate();
        let completed_ms: f64 = live.outcomes.iter().map(|o| o.machine_seconds()).sum();
        let metrics_ok = (0.0..=100.0).contains(&miss)
            && (0.0..=1.0).contains(&rate)
            && completed_ms <= total_nodes as f64 * now + EPS;
        self.check("metrics-sanity", metrics_ok, || {
            format!(
                "t={now}: miss={miss} rate={rate} completed_machine_seconds={completed_ms} budget={}",
                total_nodes as f64 * now
            )
        });

        // dist-consistency: the precomputed survival table agrees exactly
        // with the linear scan, cdf + survival ≈ 1, and survival is
        // monotone non-increasing — probed on the jobs currently in play.
        let mut dist_ok = true;
        for &i in s
            .pending
            .iter()
            .chain(s.running.iter().map(|r| &r.idx))
            .take(8)
        {
            let d = &self.dists[i];
            let probes = [
                d.lower() - 1.0,
                d.lower(),
                now % (d.upper() + 1.0),
                d.upper() + 1.0,
            ];
            let mut prev_t = f64::NEG_INFINITY;
            let mut prev_s = f64::INFINITY;
            for t in probes {
                let s_fast = d.survival(t);
                let s_ref = d.survival_linear(t);
                dist_ok &= s_fast.to_bits() == s_ref.to_bits();
                dist_ok &= (d.cdf(t) + s_fast - 1.0).abs() < EPS;
                if t >= prev_t {
                    dist_ok &= s_fast <= prev_s + EPS;
                    prev_s = s_fast;
                    prev_t = t;
                }
            }
            dist_ok &= d.survival(d.upper() + 1.0) == 0.0;
        }
        self.check("dist-consistency", dist_ok, || {
            format!("t={now}: DiscreteDist survival/cdf inconsistency on an in-play job")
        });

        // counter-consistency: the published observability counters must
        // agree with themselves and with engine ground truth — options
        // enumerated covers everything placed or pruned, cache lookups
        // split exactly into hits and misses, and the engine's cycle
        // counter tracks the snapshot. Counters a scheduler never publishes
        // read 0, so the checks hold vacuously for prio/backfill.
        let (counter_ok, detail) = match &self.probe {
            Some(p) => {
                let (enumerated, pruned, placed) =
                    (p.enumerated.get(), p.pruned.get(), p.placed.get());
                let (hits, misses, lookups) = (
                    p.cache_hits.get(),
                    p.cache_misses.get(),
                    p.cache_lookups.get(),
                );
                let cycles = p.engine_cycles.get();
                let ok = enumerated >= pruned.saturating_add(placed)
                    && hits.saturating_add(misses) == lookups
                    && cycles as usize == s.cycles;
                (
                    ok,
                    format!(
                        "enumerated={enumerated} pruned={pruned} placed={placed} \
                         hits={hits} misses={misses} lookups={lookups} \
                         engine_cycles={cycles} snapshot_cycles={}",
                        s.cycles
                    ),
                )
            }
            None => (true, String::new()),
        };
        self.check("counter-consistency", counter_ok, || {
            format!("t={now}: published counters inconsistent: {detail}")
        });

        // decision-feasibility is checked by CheckedScheduler before the
        // engine applies the decision; tick the counter here so the
        // registry reports one check per cycle from this vantage too (the
        // engine applying `s.decision` without SimError is the ground-truth
        // confirmation).
        self.check("decision-feasibility", true, String::new);
        let _ = &s.decision;
    }
}

/// Shared log for [`CheckedScheduler`]: cycles checked and violations found.
#[derive(Debug, Default)]
pub struct FeasibilityLog {
    /// Decisions validated.
    pub checks: u64,
    /// Violation descriptions (empty = all feasible).
    pub violations: Vec<String>,
}

/// Wraps a scheduler and re-validates every decision it extracts against
/// the raw capacity rows of the view, via [`threesigma::check_decision`].
pub struct CheckedScheduler<S> {
    inner: S,
    log: Rc<RefCell<FeasibilityLog>>,
}

impl<S: Scheduler> CheckedScheduler<S> {
    /// Wraps `inner`, recording into `log`.
    pub fn new(inner: S, log: Rc<RefCell<FeasibilityLog>>) -> Self {
        Self { inner, log }
    }
}

impl<S: Scheduler> Scheduler for CheckedScheduler<S> {
    fn max_partitions(&self) -> Option<usize> {
        self.inner.max_partitions()
    }

    fn on_job_submitted(&mut self, spec: &JobSpec, now: f64) {
        self.inner.on_job_submitted(spec, now);
    }

    fn on_job_completed(&mut self, spec: &JobSpec, outcome: &JobOutcome, now: f64) {
        self.inner.on_job_completed(spec, outcome, now);
    }

    fn on_job_killed(&mut self, spec: &JobSpec, elapsed: f64, will_retry: bool, now: f64) {
        self.inner.on_job_killed(spec, elapsed, will_retry, now);
    }

    fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
        let decision = self.inner.schedule(view, now);
        let mut log = self.log.borrow_mut();
        log.checks += 1;
        for v in check_decision(view, &decision) {
            log.violations
                .push(format!("[decision-feasibility] t={now}: {v}"));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{ClusterSpec, Engine, EngineConfig, JobKind, PartitionId, Placement};

    struct Fifo;
    impl Scheduler for Fifo {
        fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
            let mut free = view.free.to_vec();
            let mut placements = Vec::new();
            for job in &view.pending {
                let mut remaining = job.tasks;
                let mut alloc = Vec::new();
                for (p, f) in free.iter_mut().enumerate() {
                    let take = remaining.min(*f);
                    if take > 0 {
                        alloc.push((PartitionId(p), take));
                        remaining -= take;
                        *f -= take;
                    }
                }
                if remaining == 0 {
                    placements.push(Placement {
                        job: job.id,
                        allocation: alloc,
                    });
                } else {
                    for (p, n) in alloc {
                        free[p.index()] += n;
                    }
                }
            }
            SchedulingDecision {
                placements,
                ..SchedulingDecision::noop()
            }
        }
    }

    /// Drops one pending job on the floor every cycle (never places it,
    /// via an illegal "cancel a job twice" decision shape is caught by the
    /// engine, so instead: places the same job twice) — used to prove the
    /// checker catches scheduler misbehaviour before the engine does.
    struct DoublePlacer;
    impl Scheduler for DoublePlacer {
        fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
            let mut d = SchedulingDecision::noop();
            if let Some(job) = view.pending.first() {
                let pl = Placement {
                    job: job.id,
                    allocation: vec![(PartitionId(0), job.tasks)],
                };
                d.placements.push(pl.clone());
                d.placements.push(pl);
            }
            d
        }
    }

    fn jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::new(1, 0.0, 2, 50.0, JobKind::BestEffort),
            JobSpec::new(2, 5.0, 1, 30.0, JobKind::Slo { deadline: 500.0 }),
        ]
    }

    #[test]
    fn clean_run_checks_every_invariant_with_no_violations() {
        let trace = jobs();
        let recorder = Recorder::enabled();
        let engine = Engine::new(ClusterSpec::uniform(2, 2), EngineConfig::default())
            .with_recorder(recorder.clone());
        let mut checker = InvariantChecker::new(&trace).with_recorder(&recorder);
        let log = Rc::new(RefCell::new(FeasibilityLog::default()));
        let mut sched = CheckedScheduler::new(Fifo, log.clone());
        let m = engine
            .run_observed(&trace, &mut sched, &mut checker)
            .unwrap();
        checker.check_final_metrics(&m, 4);
        assert!(
            checker.violations().is_empty(),
            "{:?}",
            checker.violations()
        );
        for name in INVARIANTS {
            assert!(checker.counts()[name] > 0, "{name} never checked");
        }
        assert!(log.borrow().checks > 0);
        assert!(log.borrow().violations.is_empty());
    }

    #[test]
    fn checked_scheduler_flags_double_placement_before_the_engine() {
        let trace = jobs();
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let log = Rc::new(RefCell::new(FeasibilityLog::default()));
        let mut sched = CheckedScheduler::new(DoublePlacer, log.clone());
        // The engine rejects the duplicate placement with an error…
        let err = engine.run(&trace, &mut sched);
        assert!(err.is_err());
        // …but the wrapper already recorded the structured violation.
        let log = log.borrow();
        assert!(
            log.violations.iter().any(|v| v.contains("placed twice")),
            "{:?}",
            log.violations
        );
    }
}
