//! Crash-injection campaign for the durable serve stack.
//!
//! Each kill point runs the same deterministic job/fault stream twice:
//!
//! 1. **Reference** — straight through one durable session (journal +
//!    auto-snapshots in a scratch data directory), drained to quiescence.
//! 2. **Victim** — the stream is cut at a seeded step index and the
//!    session is dropped *without* a final snapshot or journal truncation
//!    (the in-process equivalent of `kill -9` between two acks). A third
//!    of the kill points additionally corrupt the journal tail — garbage
//!    bytes or a half-written frame — to model a write torn by the crash
//!    itself. A fresh process then recovers from the data directory,
//!    replays the journal suffix, consumes the rest of the stream, and
//!    finishes.
//!
//! The campaign fails unless, at every kill point, the recovered run's
//! [`ServeSummary`] (including its outcome digest) and its byte-stable
//! metrics dump equal the reference's. Only `wal_recovered_records` is
//! filtered before comparison — it is genuinely process-local (zero on a
//! straight-through run). Every other durability counter is lifetime-
//! valued by construction and must survive the crash exactly.
//!
//! The driver mirrors the CLI serve loop's ordering contract:
//! admit → pump → auto-snapshot (quiescent, *before* journaling the new
//! record) → append+sync → apply → ack. Faults and the final clock edge
//! are journaled the same way, so replay reconstructs the exact event
//! history.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use threesigma::{EstimateSource, SchedConfig, SchedSnapshot, ThreeSigmaScheduler};
use threesigma_cluster::wal::{encode_frame, recover_data_dir, replay};
use threesigma_cluster::{
    Attributes, ClusterSpec, DataDir, FaultEvent, JobKind, JobSpec, PartitionId, ServeConfig,
    ServeSession, ServeSnapshot, ServeSummary, SnapshotFile, Wal, WalEntry, WalMetrics, WalRecord,
    SNAPSHOT_FORMAT_VERSION, WAL_MAGIC,
};
use threesigma_obs::Recorder;

/// Estimate-cache capacity (small, so eviction churn is part of the state
/// being checkpointed).
const CACHE_CAP: usize = 8;
/// Predictor per-feature-value state cap.
const PREDICTOR_CAP: usize = 512;
/// Distinct tenants in the stream.
const TENANTS: u64 = 60;
/// Jobs per arrival burst.
const BURST: usize = 12;
/// Seconds between bursts.
const BURST_GAP: f64 = 24.0;
/// Every 4th burst is preceded by a long idle gap — enough for every
/// in-flight job (runtime ≤ 60 s) to finish, so the session reaches
/// quiescence and the auto-snapshot policy can land a checkpoint.
const IDLE_GAP: f64 = 900.0;
/// Auto-snapshot threshold (journal records since the last snapshot).
const SNAP_EVERY: u64 = 20;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrashConfig {
    /// Jobs in the deterministic stream.
    pub total_jobs: u64,
    /// Seeded kill points to exercise (each is a full recovered run).
    pub kill_points: usize,
    /// Seed for both the stream and the kill-point choices.
    pub seed: u64,
}

impl Default for CrashConfig {
    fn default() -> Self {
        Self {
            total_jobs: 240,
            kill_points: 6,
            seed: 0x0003_516c_4a54,
        }
    }
}

/// One step of the deterministic input stream.
#[derive(Debug, Clone)]
enum Step {
    Job(JobSpec),
    Fault(FaultEvent),
}

/// How the journal tail is mangled after the kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailDamage {
    /// Clean cut between two acks — journal ends on a frame boundary.
    None,
    /// Garbage bytes after the last good frame (a torn header).
    Garbage,
    /// A valid frame cut mid-payload (a torn in-progress append).
    HalfFrame,
}

impl TailDamage {
    fn label(self) -> &'static str {
        match self {
            TailDamage::None => "clean",
            TailDamage::Garbage => "garbage-tail",
            TailDamage::HalfFrame => "half-frame",
        }
    }
}

/// The engine + policy state a campaign snapshot checkpoints. Mirrors the
/// CLI's full snapshot minus the wire counters (the campaign driver sits
/// below the wire layer).
#[derive(Debug, Serialize, Deserialize)]
struct CampaignSnapshot {
    engine: ServeSnapshot,
    sched: SchedSnapshot,
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        cycle_interval: 2.0,
        retention: 120.0,
        ..ServeConfig::default()
    }
}

fn build(recorder: &Recorder) -> (ServeSession, ThreeSigmaScheduler) {
    let sched_cfg = SchedConfig {
        cycle_hint: 2.0,
        cache_capacity: Some(CACHE_CAP),
        max_timings: Some(64),
        ..SchedConfig::default()
    };
    let pred_cfg = threesigma_predict::PredictorConfig {
        max_tracked_values: Some(PREDICTOR_CAP),
        ..threesigma_predict::PredictorConfig::default()
    };
    let sched = ThreeSigmaScheduler::new(sched_cfg, EstimateSource::Predicted, pred_cfg)
        .with_recorder(recorder);
    let session = ServeSession::new(ClusterSpec::uniform(4, 16), serve_config(), recorder)
        .expect("valid serve config");
    (session, sched)
}

fn wire_job(rng: &mut StdRng, id: u64, submit: f64) -> JobSpec {
    let tenant = rng.random::<u64>() % TENANTS;
    let name = rng.random::<u64>() % 7;
    let tasks = 1 + rng.random::<u32>() % 6;
    let runtime = 5.0 + rng.random::<f64>() * 55.0;
    let kind = if rng.random::<f64>() < 0.5 {
        JobKind::Slo {
            deadline: submit + runtime * (2.0 + rng.random::<f64>() * 3.0),
        }
    } else {
        JobKind::BestEffort
    };
    let attrs = Attributes::new()
        .with("tenant", format!("t{tenant}"))
        .with("user", format!("t{tenant}"))
        .with("job_name", format!("j{name}"));
    JobSpec::new(id, submit, tasks, runtime, kind).with_attributes(attrs)
}

/// Expands the seed into the full step stream: bursty arrivals, periodic
/// idle gaps (snapshot opportunities), and a partition-loss/restore pair
/// so fault records cross the journal too.
fn plan_stream(cfg: &CrashConfig) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut steps = Vec::new();
    let mut t = 0.0;
    let mut id = 0u64;
    let mut bursts = 0u64;
    let fault_down_at = cfg.total_jobs / 3;
    let fault_up_at = 2 * cfg.total_jobs / 3;
    while id < cfg.total_jobs {
        if bursts > 0 && bursts.is_multiple_of(4) {
            t += IDLE_GAP;
        }
        for _ in 0..BURST.min((cfg.total_jobs - id) as usize) {
            if id == fault_down_at {
                steps.push(Step::Fault(FaultEvent::PartitionDown {
                    at: t + 6.0,
                    partition: PartitionId(1),
                    nodes: 8,
                }));
            }
            if id == fault_up_at {
                steps.push(Step::Fault(FaultEvent::PartitionUp {
                    at: t + 6.0,
                    partition: PartitionId(1),
                    nodes: 8,
                }));
            }
            steps.push(Step::Job(wire_job(&mut rng, id, t)));
            id += 1;
        }
        t += BURST_GAP;
        bursts += 1;
    }
    steps
}

/// The campaign's durable serve driver: the same journal/snapshot protocol
/// the CLI serve loop runs, minus the wire layer.
struct Driver {
    data: DataDir,
    wal: Wal,
    metrics: WalMetrics,
    truncated_total: u64,
    records_since_snap: u64,
}

impl Driver {
    fn append(&mut self, record: WalRecord) -> Result<(), String> {
        self.wal
            .append(record)
            .map_err(|e| format!("journal append: {e}"))?;
        self.records_since_snap += 1;
        self.metrics.publish(&self.wal, self.truncated_total);
        Ok(())
    }

    /// Snapshot-write-then-truncate, with the truncation counted at write
    /// time so the lifetime total is crash-consistent (the CLI protocol).
    fn take_snapshot(
        &mut self,
        session: &ServeSession,
        sched: &ThreeSigmaScheduler,
    ) -> Result<(), String> {
        let payload = CampaignSnapshot {
            engine: session.snapshot().map_err(|e| format!("snapshot: {e}"))?,
            sched: sched.serve_snapshot(),
        };
        let watermark = self.wal.next_seq().saturating_sub(1);
        let body = self.wal.len_bytes().saturating_sub(WAL_MAGIC.len() as u64);
        let total = self.truncated_total + body;
        let payload =
            serde_json::to_value(&payload).map_err(|e| format!("encode snapshot: {e}"))?;
        self.data
            .write_snapshot(&SnapshotFile {
                format_version: SNAPSHOT_FORMAT_VERSION,
                wal_seq: watermark,
                wal_truncated_bytes: total,
                payload,
            })
            .map_err(|e| format!("write snapshot: {e}"))?;
        self.truncated_total = total;
        self.wal
            .truncate_through(watermark)
            .map_err(|e| format!("truncate journal: {e}"))?;
        self.records_since_snap = 0;
        self.metrics.publish(&self.wal, self.truncated_total);
        Ok(())
    }

    /// Feeds one stream step through the full ordering contract.
    fn feed(
        &mut self,
        step: &Step,
        session: &mut ServeSession,
        sched: &mut ThreeSigmaScheduler,
    ) -> Result<(), String> {
        match step {
            Step::Job(spec) => {
                session
                    .admit(spec)
                    .map_err(|e| format!("job {} rejected: {e}", spec.id.0))?;
                session
                    .pump_until(spec.submit_time, sched)
                    .map_err(|e| format!("pump: {e}"))?;
                if self.records_since_snap >= SNAP_EVERY && session.is_quiescent() {
                    self.take_snapshot(session, sched)?;
                }
                self.append(WalRecord::Job(spec.clone()))?;
                session
                    .submit(spec.clone())
                    .map_err(|e| format!("submit after admit: {e}"))?;
            }
            Step::Fault(fault) => {
                self.append(WalRecord::Fault(*fault))?;
                session
                    .inject_fault(*fault)
                    .map_err(|e| format!("inject fault: {e}"))?;
            }
        }
        Ok(())
    }

    /// Drains to quiescence, journals the final clock edge, and takes the
    /// shutdown snapshot — the clean-stop protocol.
    fn finish(
        &mut self,
        session: &mut ServeSession,
        sched: &mut ThreeSigmaScheduler,
    ) -> Result<(), String> {
        session
            .drain(f64::INFINITY, sched)
            .map_err(|e| format!("drain: {e}"))?;
        self.append(WalRecord::Clock { now: session.now() })?;
        self.take_snapshot(session, sched)
    }
}

fn open_driver(dir: &Path, recorder: &Recorder) -> Result<Driver, String> {
    let data = DataDir::open(dir).map_err(|e| format!("open data dir: {e}"))?;
    let (wal, _) =
        Wal::open(&data.journal_path(), false).map_err(|e| format!("open journal: {e}"))?;
    Ok(Driver {
        data,
        wal,
        metrics: WalMetrics::register(recorder),
        truncated_total: 0,
        records_since_snap: 0,
    })
}

/// The comparison key of one finished run: the summary (with its outcome
/// digest) and the stable metrics dump minus the process-local
/// `wal_recovered_records` gauge.
fn finish_and_fingerprint(
    driver: &mut Driver,
    mut session: ServeSession,
    sched: &mut ThreeSigmaScheduler,
    recorder: &Recorder,
) -> Result<(ServeSummary, String), String> {
    driver.finish(&mut session, sched)?;
    let metrics: String = recorder
        .snapshot()
        .to_stable_json()
        .lines()
        .filter(|l| !l.contains("wal_recovered_records"))
        .collect::<Vec<_>>()
        .join("\n");
    Ok((session.summary(), metrics))
}

/// Runs the stream straight through one durable session.
fn reference_run(dir: &Path, steps: &[Step]) -> Result<(ServeSummary, String), String> {
    let recorder = Recorder::enabled();
    let (mut session, mut sched) = build(&recorder);
    let mut driver = open_driver(dir, &recorder)?;
    for step in steps {
        driver.feed(step, &mut session, &mut sched)?;
    }
    finish_and_fingerprint(&mut driver, session, &mut sched, &recorder)
}

/// Applies the post-kill tail damage to the journal file.
fn damage_tail(journal: &Path, damage: TailDamage) -> Result<(), String> {
    let mut bytes = std::fs::read(journal).map_err(|e| format!("read journal: {e}"))?;
    match damage {
        TailDamage::None => return Ok(()),
        TailDamage::Garbage => bytes.extend_from_slice(&[0xFF, 0x03, 0x51, 0x64, 0xFF]),
        TailDamage::HalfFrame => {
            // A plausible in-progress append, cut mid-payload. Recovery
            // must drop it: the record was never synced, so it was never
            // acknowledged.
            let frame = encode_frame(&WalEntry {
                seq: u64::MAX / 2,
                record: WalRecord::Clock { now: 1e9 },
            })
            .map_err(|e| format!("encode torn frame: {e}"))?;
            bytes.extend_from_slice(&frame[..frame.len() / 2]);
        }
    }
    std::fs::write(journal, bytes).map_err(|e| format!("write torn journal: {e}"))
}

/// Kills the stream after `kill_at` acknowledged steps, damages the tail,
/// recovers in a "fresh process", finishes the stream, and fingerprints.
fn recovered_run(
    dir: &Path,
    steps: &[Step],
    kill_at: usize,
    damage: TailDamage,
) -> Result<(ServeSummary, String), String> {
    // Victim process: acks `kill_at` steps, then vanishes — no drain, no
    // final snapshot, no truncation.
    {
        let recorder = Recorder::enabled();
        let (mut session, mut sched) = build(&recorder);
        let mut driver = open_driver(dir, &recorder)?;
        for step in &steps[..kill_at] {
            driver.feed(step, &mut session, &mut sched)?;
        }
    }
    let data = DataDir::open(dir).map_err(|e| format!("open data dir: {e}"))?;
    damage_tail(&data.journal_path(), damage)?;

    // Fresh process: recover, replay, resume.
    let recovered = recover_data_dir(&data, false).map_err(|e| format!("recover: {e}"))?;
    if damage != TailDamage::None && recovered.torn_bytes == 0 {
        return Err("tail damage was not detected as torn bytes".into());
    }
    let recorder = Recorder::enabled();
    let (mut session, mut sched) = build(&recorder);
    if let Some(snap) = &recovered.snapshot {
        let payload: CampaignSnapshot =
            serde_json::from_value(&snap.payload).map_err(|e| format!("decode snapshot: {e}"))?;
        sched
            .serve_restore(payload.sched)
            .map_err(|e| format!("scheduler restore: {e}"))?;
        session = ServeSession::restore(
            ClusterSpec::uniform(4, 16),
            serve_config(),
            &recorder,
            &payload.engine,
        )
        .map_err(|e| format!("session restore: {e}"))?;
    }
    let mut driver = Driver {
        metrics: WalMetrics::register(&recorder),
        truncated_total: recovered
            .snapshot
            .as_ref()
            .map_or(0, |s| s.wal_truncated_bytes),
        records_since_snap: recovered.suffix.len() as u64,
        wal: recovered.wal,
        data,
    };
    // Complete an interrupted truncation (snapshot written, truncate lost)
    // without recounting: those bytes were counted at snapshot-write time.
    if recovered.covered > 0 || recovered.duplicates > 0 {
        let watermark = recovered.snapshot.as_ref().map_or(0, |s| s.wal_seq);
        driver
            .wal
            .truncate_through(watermark)
            .map_err(|e| format!("complete truncation: {e}"))?;
    }
    let replayed =
        replay(&mut session, &mut sched, &recovered.suffix).map_err(|e| format!("replay: {e}"))?;
    driver.metrics.recovered_records.set(replayed as f64);
    driver.metrics.publish(&driver.wal, driver.truncated_total);

    // No acknowledged step may be lost: state must equal exactly the
    // pre-kill prefix, so the resume point is the kill offset itself.
    let acked_jobs = steps[..kill_at]
        .iter()
        .filter(|s| matches!(s, Step::Job(_)))
        .count() as u64;
    if session.summary().submitted != acked_jobs {
        return Err(format!(
            "recovered {} submitted jobs, but {} were acknowledged before the kill",
            session.summary().submitted,
            acked_jobs
        ));
    }
    for step in &steps[kill_at..] {
        driver.feed(step, &mut session, &mut sched)?;
    }
    finish_and_fingerprint(&mut driver, session, &mut sched, &recorder)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("threesigma_crash_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the campaign: one reference run plus `cfg.kill_points` recovered
/// runs at seeded offsets, each compared byte-for-byte. Returns the
/// rendered report, or a reproducible failure description.
///
/// # Errors
///
/// The first kill point whose recovered run diverges from (or fails
/// against) the reference, with the seed, offset, and damage mode needed
/// to replay it.
pub fn run_crash_campaign(cfg: &CrashConfig) -> Result<String, String> {
    let steps = plan_stream(cfg);
    if steps.len() < 2 {
        return Err("stream too short to kill".into());
    }
    let ref_dir = scratch_dir(&format!("{:x}_ref", cfg.seed));
    let reference = reference_run(&ref_dir, &steps);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let (ref_summary, ref_metrics) = reference?;

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead_2bad);
    let mut report = format!(
        "crash campaign: seed={} jobs={} steps={} kill_points={}\n",
        cfg.seed,
        cfg.total_jobs,
        steps.len(),
        cfg.kill_points
    );
    for point in 0..cfg.kill_points {
        let kill_at = 1 + (rng.random::<u64>() as usize) % (steps.len() - 1);
        let damage = match point % 3 {
            0 => TailDamage::None,
            1 => TailDamage::Garbage,
            _ => TailDamage::HalfFrame,
        };
        let ctx = format!(
            "kill point {point}: offset={kill_at}/{} damage={} (seed {})",
            steps.len(),
            damage.label(),
            cfg.seed
        );
        let dir = scratch_dir(&format!("{:x}_k{point}", cfg.seed));
        let run = recovered_run(&dir, &steps, kill_at, damage);
        let _ = std::fs::remove_dir_all(&dir);
        let (summary, metrics) = run.map_err(|e| format!("{ctx}: {e}"))?;
        if summary != ref_summary {
            return Err(format!(
                "{ctx}: recovered summary diverged\nreference: {ref_summary:?}\nrecovered: {summary:?}"
            ));
        }
        if metrics != ref_metrics {
            let diff = first_diff(&ref_metrics, &metrics);
            return Err(format!(
                "{ctx}: recovered metrics diverged\nfirst differing line:\n{diff}"
            ));
        }
        report.push_str(&format!("  {ctx}: equivalent\n"));
    }
    report.push_str("all kill points recovered to digest-identical state\n");
    Ok(report)
}

fn first_diff(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("reference: {la}\nrecovered: {lb}");
        }
    }
    format!(
        "line counts differ: reference {} vs recovered {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Always-on campaign: small stream, three kill points covering all
    /// three tail-damage modes.
    #[test]
    fn crash_recovery_is_equivalent_small() {
        let cfg = CrashConfig {
            total_jobs: 96,
            kill_points: 3,
            seed: 0x0035_160b_ad01,
        };
        let report = run_crash_campaign(&cfg).expect("campaign passes");
        assert!(report.contains("all kill points recovered"), "{report}");
    }

    /// Full campaign (release only): 20+ seeded kill points across a
    /// longer stream, cycling through every damage mode.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-mode campaign: run with --release")]
    fn crash_recovery_is_equivalent_at_scale() {
        let cfg = CrashConfig {
            total_jobs: 600,
            kill_points: 21,
            seed: 0x0035_160b_ad02,
        };
        let report = run_crash_campaign(&cfg).expect("campaign passes");
        assert!(report.contains("all kill points recovered"), "{report}");
    }
}
