//! Deterministic simulation-test harness for the 3Sigma reproduction.
//!
//! FoundationDB-style scenario testing: a single `u64` seed expands into a
//! randomized stress campaign — bursty arrivals, heavy-tailed true
//! runtimes, adversarial mis-estimates, preemption storms, partition
//! capacity loss/restore, node crashes with kill/retry, and sustained
//! overload under a cycle budget — that drives [`threesigma_cluster::Engine`]
//! through every scheduler while a battery of invariants is checked after
//! *every* scheduling cycle (see [`invariants::INVARIANTS`]). Any failure
//! replays exactly from the seed printed with it:
//!
//! ```sh
//! cargo run --release -p threesigma-cli -- simtest --seed 17
//! ```
//!
//! The harness has three layers:
//!
//! * [`scenario`] — seeded generation of job traces, fault scripts, and
//!   adversarial estimate maps ([`Scenario::generate`]), plus the crafted
//!   contention-free trace used for the differential dominance oracle.
//! * [`invariants`] — the invariant registry: an engine-side
//!   [`invariants::InvariantChecker`] (a
//!   [`threesigma_cluster::CycleObserver`]) checking ground-truth state
//!   each cycle, and a [`invariants::CheckedScheduler`] wrapper that
//!   re-validates every extracted decision against the raw capacity rows
//!   via [`threesigma::check_decision`].
//! * [`harness`] — [`run_seed`] runs one seed's scenario through
//!   `threesigma`, `prio`, and `backfill`, merges per-scheduler reports,
//!   applies cross-scheduler differential checks (shared safety plus the
//!   no-contention dominance case), and renders a byte-stable report whose
//!   FNV digest makes replay divergence visible at a glance.
//!
//! Everything is deterministic: no wall clock, no thread scheduling in the
//! checked path, and `HashMap` iteration never feeds an assertion. The
//! checked-in seed corpus ([`corpus_seeds`]) is the regression suite CI
//! runs on every push.

pub mod crash;
pub mod harness;
pub mod invariants;
pub mod scenario;

pub use crash::{run_crash_campaign, CrashConfig};
pub use harness::{
    dominance_violations, run_seed, run_seed_with, SchedulerReport, SeedOverrides, SeedReport,
};
pub use invariants::{CheckedScheduler, FeasibilityLog, InvariantChecker, INVARIANTS};
pub use scenario::{Profile, Scenario};

/// The checked-in regression seed corpus (`corpus/seeds.txt`), one seed per
/// line with `#` comments. Every seed here must pass [`run_seed`]; CI runs
/// the full list plus a fresh-seed smoke campaign.
pub fn corpus_seeds() -> Vec<u64> {
    include_str!("../corpus/seeds.txt")
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().expect("corpus/seeds.txt holds one u64 per line"))
        .collect()
}

/// FNV-1a over a byte string (the report digest primitive).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_at_least_twenty_seeds() {
        let seeds = corpus_seeds();
        assert!(seeds.len() >= 20, "corpus holds {} seeds", seeds.len());
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "corpus seeds must be distinct");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
