//! The campaign driver: one seed in, one byte-stable report out.
//!
//! [`run_seed`] expands the seed into a [`Scenario`], runs it through all
//! three schedulers (3σSched, priority, backfill) under the full invariant
//! battery, then applies the cross-scheduler differential checks. The
//! rendered report is deterministic down to the byte — its FNV digest is
//! printed so replay divergence is visible at a glance.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use threesigma::{
    BackfillScheduler, EstimateSource, PointSource, PrioScheduler, SchedConfig, ThreeSigmaScheduler,
};
use threesigma_cluster::{
    ClusterSpec, Engine, EngineConfig, JobOutcome, JobState, Metrics, Scheduler,
};
use threesigma_obs::Recorder;
use threesigma_predict::PredictorConfig;

use crate::fnv1a;
use crate::invariants::{CheckedScheduler, FeasibilityLog, InvariantChecker};
use crate::scenario::Scenario;

/// One scheduler's verdict for one seed.
#[derive(Debug)]
pub struct SchedulerReport {
    /// Scheduler name (`threesigma` / `prio` / `backfill`).
    pub scheduler: &'static str,
    /// Checks performed per invariant.
    pub counts: BTreeMap<&'static str, u64>,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
    /// End-of-run metrics, if the run finished without a [`SimError`].
    ///
    /// [`SimError`]: threesigma_cluster::SimError
    pub metrics: Option<Metrics>,
}

impl SchedulerReport {
    /// No violations and the run finished.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.metrics.is_some()
    }
}

/// Everything one seed produced.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Stress profile name.
    pub profile: &'static str,
    /// Trace size.
    pub jobs: usize,
    /// Fault-script size.
    pub faults: usize,
    /// Per-scheduler results.
    pub schedulers: Vec<SchedulerReport>,
    /// Cross-scheduler differential violations.
    pub differential: Vec<String>,
}

impl SeedReport {
    /// True when every scheduler and every differential check passed.
    pub fn passed(&self) -> bool {
        self.schedulers.iter().all(SchedulerReport::passed) && self.differential.is_empty()
    }

    /// Renders the byte-stable report (ends with its own FNV digest line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "seed {} profile={} jobs={} faults={}\n",
            self.seed, self.profile, self.jobs, self.faults
        ));
        for s in &self.schedulers {
            let m = match &s.metrics {
                Some(m) => format!(
                    "cycles={} completed={} canceled={} preemptions={} miss_pct={:.4} goodput_h={:.6}",
                    m.cycles,
                    m.count(JobState::Completed),
                    m.count(JobState::Canceled),
                    m.preemptions,
                    m.slo_miss_pct(),
                    m.goodput_hours(),
                ),
                None => "run failed (SimError)".to_string(),
            };
            out.push_str(&format!("  [{:<10}] {}\n", s.scheduler, m));
            let checks: u64 = s.counts.values().sum();
            out.push_str(&format!(
                "  [{:<10}] invariant checks={checks} violations={}\n",
                s.scheduler,
                s.violations.len()
            ));
            for v in &s.violations {
                out.push_str(&format!("  [{:<10}] VIOLATION {v}\n", s.scheduler));
            }
        }
        out.push_str(&format!(
            "  differential violations={}\n",
            self.differential.len()
        ));
        for v in &self.differential {
            out.push_str(&format!("  DIFFERENTIAL {v}\n"));
        }
        out.push_str(&format!(
            "verdict {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out.push_str(&format!("digest {:016x}\n", fnv1a(out.as_bytes())));
        out
    }
}

/// Runs one scheduler over a scenario under the full invariant battery.
fn run_one(
    scenario: &Scenario,
    name: &'static str,
    scheduler: &mut dyn Scheduler,
    recorder: &Recorder,
) -> SchedulerReport {
    let engine = Engine::new(
        ClusterSpec::uniform(scenario.racks, scenario.nodes_per_rack),
        EngineConfig {
            cycle_interval: scenario.cycle_interval,
            drain: Some(scenario.drain),
            seed: scenario.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            faults: scenario.faults.clone(),
        },
    )
    .with_recorder(recorder.clone());
    let mut checker = InvariantChecker::new(&scenario.jobs).with_recorder(recorder);
    let log = Rc::new(RefCell::new(FeasibilityLog::default()));
    let mut checked = CheckedScheduler::new(DynScheduler(scheduler), log.clone());
    let result = engine.run_observed(&scenario.jobs, &mut checked, &mut checker);

    let (metrics, sim_error) = match result {
        Ok(m) => {
            checker.check_final_metrics(&m, scenario.total_nodes());
            (Some(m), None)
        }
        Err(e) => (None, Some(e)),
    };
    let mut violations = checker.violations().to_vec();
    let mut counts = checker.counts().clone();
    {
        let log = log.borrow();
        *counts.get_mut("decision-feasibility").unwrap() += log.checks;
        violations.extend(log.violations.iter().cloned());
    }
    if let Some(e) = sim_error {
        violations.push(format!("[engine] SimError: {e:?}"));
    }
    SchedulerReport {
        scheduler: name,
        counts,
        violations,
        metrics,
    }
}

/// `&mut dyn Scheduler` adapter so one `run_one` serves all three schedulers.
struct DynScheduler<'a>(&'a mut dyn Scheduler);

impl Scheduler for DynScheduler<'_> {
    fn on_job_submitted(&mut self, spec: &threesigma_cluster::JobSpec, now: f64) {
        self.0.on_job_submitted(spec, now);
    }
    fn on_job_completed(
        &mut self,
        spec: &threesigma_cluster::JobSpec,
        outcome: &JobOutcome,
        now: f64,
    ) {
        self.0.on_job_completed(spec, outcome, now);
    }
    fn schedule(
        &mut self,
        view: &threesigma_cluster::SimulationView<'_>,
        now: f64,
    ) -> threesigma_cluster::SchedulingDecision {
        self.0.schedule(view, now)
    }
}

/// The 3σSched instance for a scenario: injected estimates when the profile
/// scripted them, oracle points otherwise.
fn three_sigma_for(scenario: &Scenario) -> ThreeSigmaScheduler {
    let source = if scenario.estimates.is_empty() {
        EstimateSource::OraclePoint
    } else {
        EstimateSource::Injected(Arc::new(scenario.estimates.clone()))
    };
    ThreeSigmaScheduler::new(
        SchedConfig {
            cycle_hint: scenario.cycle_interval,
            ..SchedConfig::default()
        },
        source,
        PredictorConfig::default(),
    )
}

/// Cross-scheduler shared-safety checks over completed runs: every
/// scheduler must account for the same trace (same job ids, one outcome per
/// job) and no run may have errored.
fn differential_safety(reports: &[SchedulerReport], trace_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    for r in reports {
        match &r.metrics {
            None => out.push(format!(
                "{}: run errored; differential oracle void",
                r.scheduler
            )),
            Some(m) if m.outcomes.len() != trace_len => out.push(format!(
                "{}: {} outcomes for a {}-job trace",
                r.scheduler,
                m.outcomes.len(),
                trace_len
            )),
            Some(_) => {}
        }
    }
    if out.is_empty() {
        let ids: Vec<Vec<u64>> = reports
            .iter()
            .map(|r| {
                r.metrics
                    .as_ref()
                    .unwrap()
                    .outcomes
                    .iter()
                    .map(|o| o.id.0)
                    .collect()
            })
            .collect();
        for (r, i) in reports.iter().zip(&ids).skip(1) {
            if *i != ids[0] {
                out.push(format!(
                    "{}: outcome job-id order diverges from {}",
                    r.scheduler, reports[0].scheduler
                ));
            }
        }
    }
    out
}

/// Dominance oracle: on the contention-free trace with perfect point
/// estimates, 3σSched must meet every SLO that backfill meets. Returns one
/// violation string per dominated deadline.
pub fn dominance_violations(seed: u64) -> Vec<String> {
    let scenario = Scenario::no_contention(seed);
    let ts_rec = Recorder::enabled();
    let bf_rec = Recorder::enabled();
    let mut ts = three_sigma_for(&scenario).with_recorder(&ts_rec);
    let mut bf = BackfillScheduler::new(PointSource::Oracle, PredictorConfig::default());
    let ts_report = run_one(&scenario, "threesigma", &mut ts, &ts_rec);
    let bf_report = run_one(&scenario, "backfill", &mut bf, &bf_rec);
    let mut out: Vec<String> = ts_report
        .violations
        .iter()
        .chain(&bf_report.violations)
        .map(|v| format!("dominance-trace invariant: {v}"))
        .collect();
    let (Some(ts_m), Some(bf_m)) = (&ts_report.metrics, &bf_report.metrics) else {
        out.push("dominance trace: a run errored".into());
        return out;
    };
    for (t, b) in ts_m.outcomes.iter().zip(&bf_m.outcomes) {
        if b.deadline_met() == Some(true) && t.deadline_met() != Some(true) {
            out.push(format!(
                "seed {seed}: 3sigma missed SLO job {:?} that backfill met (no contention, perfect estimates)",
                t.id
            ));
        }
    }
    out
}

/// Runs the full campaign for one seed (see module docs).
pub fn run_seed(seed: u64) -> SeedReport {
    let scenario = Scenario::generate(seed);
    let ts_rec = Recorder::enabled();
    let prio_rec = Recorder::enabled();
    let bf_rec = Recorder::enabled();
    let mut ts = three_sigma_for(&scenario).with_recorder(&ts_rec);
    let mut prio = PrioScheduler::new();
    let mut bf = BackfillScheduler::new(PointSource::Oracle, PredictorConfig::default());
    let schedulers = vec![
        run_one(&scenario, "threesigma", &mut ts, &ts_rec),
        run_one(&scenario, "prio", &mut prio, &prio_rec),
        run_one(&scenario, "backfill", &mut bf, &bf_rec),
    ];
    let mut differential = differential_safety(&schedulers, scenario.jobs.len());
    differential.extend(dominance_violations(seed));
    SeedReport {
        seed,
        profile: scenario.profile.name(),
        jobs: scenario.jobs.len(),
        faults: scenario.faults.len(),
        schedulers,
        differential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = run_seed(3).render();
        let b = run_seed(3).render();
        assert_eq!(a, b);
    }

    #[test]
    fn every_profile_runs_all_invariants() {
        for seed in 0..5u64 {
            let r = run_seed(seed);
            assert!(r.passed(), "seed {seed}:\n{}", r.render());
            for s in &r.schedulers {
                for (name, n) in &s.counts {
                    assert!(*n > 0, "seed {seed}: {} never checked {name}", s.scheduler);
                }
            }
        }
    }

    #[test]
    fn threesigma_counters_tick_under_the_harness() {
        let scenario = Scenario::generate(1);
        let rec = Recorder::enabled();
        let mut ts = three_sigma_for(&scenario).with_recorder(&rec);
        let report = run_one(&scenario, "threesigma", &mut ts, &rec);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.counts["counter-consistency"] > 0);
        let snap = rec.snapshot();
        assert!(snap.counter("engine_cycles_total").unwrap_or(0) > 0);
        assert!(snap.counter("sched_options_enumerated_total").unwrap_or(0) > 0);
        assert!(snap.counter("sched_cache_lookups_total").unwrap_or(0) > 0);
    }

    #[test]
    fn dominance_oracle_is_clean_on_crafted_traces() {
        for seed in [1u64, 9, 23] {
            let v = dominance_violations(seed);
            assert!(v.is_empty(), "{v:?}");
        }
    }
}
