//! The campaign driver: one seed in, one byte-stable report out.
//!
//! [`run_seed`] expands the seed into a [`Scenario`], runs it through all
//! three schedulers (3σSched, priority, backfill) under the full invariant
//! battery, then applies the cross-scheduler differential checks. The
//! rendered report is deterministic down to the byte — its FNV digest is
//! printed so replay divergence is visible at a glance.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use threesigma::{
    BackfillScheduler, CycleBudget, EstimateSource, PointSource, PrioScheduler, SchedConfig,
    ThreeSigmaScheduler,
};
use threesigma_cluster::{
    ClusterSpec, Engine, EngineConfig, JobOutcome, JobState, Metrics, Scheduler,
};
use threesigma_obs::Recorder;
use threesigma_predict::PredictorConfig;

use crate::fnv1a;
use crate::invariants::{CheckedScheduler, FeasibilityLog, InvariantChecker};
use crate::scenario::Scenario;

/// One scheduler's verdict for one seed.
#[derive(Debug)]
pub struct SchedulerReport {
    /// Scheduler name (`threesigma` / `prio` / `backfill`).
    pub scheduler: &'static str,
    /// Checks performed per invariant.
    pub counts: BTreeMap<&'static str, u64>,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
    /// End-of-run metrics, if the run finished without a [`SimError`].
    ///
    /// [`SimError`]: threesigma_cluster::SimError
    pub metrics: Option<Metrics>,
}

impl SchedulerReport {
    /// No violations and the run finished.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.metrics.is_some()
    }
}

/// Everything one seed produced.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Stress profile name.
    pub profile: &'static str,
    /// Trace size.
    pub jobs: usize,
    /// Fault-script size.
    pub faults: usize,
    /// Per-scheduler results.
    pub schedulers: Vec<SchedulerReport>,
    /// Cross-scheduler differential violations.
    pub differential: Vec<String>,
}

impl SeedReport {
    /// True when every scheduler and every differential check passed.
    pub fn passed(&self) -> bool {
        self.schedulers.iter().all(SchedulerReport::passed) && self.differential.is_empty()
    }

    /// Renders the byte-stable report (ends with its own FNV digest line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "seed {} profile={} jobs={} faults={}\n",
            self.seed, self.profile, self.jobs, self.faults
        ));
        for s in &self.schedulers {
            let m = match &s.metrics {
                Some(m) => format!(
                    "cycles={} completed={} canceled={} preemptions={} miss_pct={:.4} goodput_h={:.6}",
                    m.cycles,
                    m.count(JobState::Completed),
                    m.count(JobState::Canceled),
                    m.preemptions,
                    m.slo_miss_pct(),
                    m.goodput_hours(),
                ),
                None => "run failed (SimError)".to_string(),
            };
            out.push_str(&format!("  [{:<10}] {}\n", s.scheduler, m));
            let checks: u64 = s.counts.values().sum();
            out.push_str(&format!(
                "  [{:<10}] invariant checks={checks} violations={}\n",
                s.scheduler,
                s.violations.len()
            ));
            for v in &s.violations {
                out.push_str(&format!("  [{:<10}] VIOLATION {v}\n", s.scheduler));
            }
        }
        out.push_str(&format!(
            "  differential violations={}\n",
            self.differential.len()
        ));
        for v in &self.differential {
            out.push_str(&format!("  DIFFERENTIAL {v}\n"));
        }
        out.push_str(&format!(
            "verdict {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out.push_str(&format!("digest {:016x}\n", fnv1a(out.as_bytes())));
        out
    }
}

/// Runs one scheduler over a scenario under the full invariant battery.
fn run_one(
    scenario: &Scenario,
    name: &'static str,
    scheduler: &mut dyn Scheduler,
    recorder: &Recorder,
) -> SchedulerReport {
    let engine = Engine::new(
        ClusterSpec::uniform(scenario.racks, scenario.nodes_per_rack),
        EngineConfig {
            cycle_interval: scenario.cycle_interval,
            drain: Some(scenario.drain),
            seed: scenario.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            faults: scenario.faults.clone(),
            retry: scenario.retry,
        },
    )
    .with_recorder(recorder.clone());
    let mut checker = InvariantChecker::new(&scenario.jobs)
        .with_recorder(recorder)
        .with_retry(scenario.retry)
        .with_budget(scenario.cycle_budget);
    let log = Rc::new(RefCell::new(FeasibilityLog::default()));
    let mut checked = CheckedScheduler::new(DynScheduler(scheduler), log.clone());
    let result = engine.run_observed(&scenario.jobs, &mut checked, &mut checker);

    let (metrics, sim_error) = match result {
        Ok(m) => {
            checker.check_final_metrics(&m, scenario.total_nodes());
            (Some(m), None)
        }
        Err(e) => (None, Some(e)),
    };
    let mut violations = checker.violations().to_vec();
    let mut counts = checker.counts().clone();
    {
        let log = log.borrow();
        *counts.get_mut("decision-feasibility").unwrap() += log.checks;
        violations.extend(log.violations.iter().cloned());
    }
    if let Some(e) = sim_error {
        violations.push(format!("[engine] SimError: {e:?}"));
    }
    SchedulerReport {
        scheduler: name,
        counts,
        violations,
        metrics,
    }
}

/// `&mut dyn Scheduler` adapter so one `run_one` serves all three schedulers.
struct DynScheduler<'a>(&'a mut dyn Scheduler);

impl Scheduler for DynScheduler<'_> {
    fn max_partitions(&self) -> Option<usize> {
        self.0.max_partitions()
    }
    fn on_job_submitted(&mut self, spec: &threesigma_cluster::JobSpec, now: f64) {
        self.0.on_job_submitted(spec, now);
    }
    fn on_job_completed(
        &mut self,
        spec: &threesigma_cluster::JobSpec,
        outcome: &JobOutcome,
        now: f64,
    ) {
        self.0.on_job_completed(spec, outcome, now);
    }
    fn on_job_killed(
        &mut self,
        spec: &threesigma_cluster::JobSpec,
        elapsed: f64,
        will_retry: bool,
        now: f64,
    ) {
        self.0.on_job_killed(spec, elapsed, will_retry, now);
    }
    fn schedule(
        &mut self,
        view: &threesigma_cluster::SimulationView<'_>,
        now: f64,
    ) -> threesigma_cluster::SchedulingDecision {
        self.0.schedule(view, now)
    }
}

/// Command-line overrides applied on top of a generated scenario
/// (`threesigma simtest --max-retries N --cycle-budget-ms MS`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedOverrides {
    /// Replaces the scenario's kill-retry budget.
    pub max_retries: Option<u32>,
    /// Imposes a *wall-clock* cycle budget on 3σSched instead of the
    /// scenario's deterministic work-unit budget. Wall-clock budgets are
    /// inherently nondeterministic, so reports under this override are not
    /// byte-stable and the work-unit governor acceptance checks are skipped.
    pub cycle_budget_ms: Option<f64>,
    /// Worker shards for 3σSched's decide stage (`--shards N`). Sharding is
    /// a pure parallelism knob — reports stay byte-identical at every shard
    /// count, which is exactly what the cross-shard replay verifies.
    pub shards: Option<usize>,
    /// Pins the MILP backend (`--solver-tier 0|1|2`) regardless of the
    /// degradation level. Tiers 0/1 change which plan is chosen, so reports
    /// are tier-specific — but still byte-stable per tier.
    pub solver_tier: Option<u8>,
    /// Disables the tier-2 incremental solution cache (`--no-incremental`).
    /// Reuse is restricted to bit-identical consecutive models, so reports
    /// must stay byte-identical either way — the corpus replay proves it.
    pub no_incremental: bool,
}

impl SeedOverrides {
    fn is_default(&self) -> bool {
        // `shards` and `no_incremental` are deliberately ignored: work-unit
        // cost is shard- and reuse-invariant, so the governor acceptance
        // checks still hold. A pinned solver tier, however, changes which
        // ladder rung does the work, so it disarms acceptance.
        self.max_retries.is_none() && self.cycle_budget_ms.is_none() && self.solver_tier.is_none()
    }
}

/// The 3σSched instance for a scenario: injected estimates when the profile
/// scripted them, oracle points otherwise. `wall_budget_ms` (from
/// `--cycle-budget-ms`) takes precedence over the scenario's deterministic
/// work-unit budget.
fn three_sigma_for_with(scenario: &Scenario, overrides: &SeedOverrides) -> ThreeSigmaScheduler {
    let source = if scenario.estimates.is_empty() {
        EstimateSource::OraclePoint
    } else {
        EstimateSource::Injected(Arc::new(scenario.estimates.clone()))
    };
    let cycle_budget = match (overrides.cycle_budget_ms, scenario.cycle_budget) {
        (Some(ms), _) => CycleBudget::WallClockMs(ms),
        (None, Some(units)) => CycleBudget::WorkUnits(units),
        (None, None) => CycleBudget::Unlimited,
    };
    ThreeSigmaScheduler::new(
        SchedConfig {
            cycle_hint: scenario.cycle_interval,
            cycle_budget,
            shards: overrides.shards.unwrap_or(1),
            solver_tier: overrides.solver_tier,
            incremental_solver: !overrides.no_incremental,
            ..SchedConfig::default()
        },
        source,
        PredictorConfig::default(),
    )
}

fn three_sigma_for(scenario: &Scenario) -> ThreeSigmaScheduler {
    three_sigma_for_with(scenario, &SeedOverrides::default())
}

/// Cross-scheduler shared-safety checks over completed runs: every
/// scheduler must account for the same trace (same job ids, one outcome per
/// job) and no run may have errored.
fn differential_safety(reports: &[SchedulerReport], trace_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    for r in reports {
        match &r.metrics {
            None => out.push(format!(
                "{}: run errored; differential oracle void",
                r.scheduler
            )),
            Some(m) if m.outcomes.len() != trace_len => out.push(format!(
                "{}: {} outcomes for a {}-job trace",
                r.scheduler,
                m.outcomes.len(),
                trace_len
            )),
            Some(_) => {}
        }
    }
    if out.is_empty() {
        let ids: Vec<Vec<u64>> = reports
            .iter()
            .map(|r| {
                r.metrics
                    .as_ref()
                    .unwrap()
                    .outcomes
                    .iter()
                    .map(|o| o.id.0)
                    .collect()
            })
            .collect();
        for (r, i) in reports.iter().zip(&ids).skip(1) {
            if *i != ids[0] {
                out.push(format!(
                    "{}: outcome job-id order diverges from {}",
                    r.scheduler, reports[0].scheduler
                ));
            }
        }
    }
    out
}

/// Dominance oracle: on the contention-free trace with perfect point
/// estimates, 3σSched must meet every SLO that backfill meets. Returns one
/// violation string per dominated deadline.
pub fn dominance_violations(seed: u64) -> Vec<String> {
    let scenario = Scenario::no_contention(seed);
    let ts_rec = Recorder::enabled();
    let bf_rec = Recorder::enabled();
    let mut ts = three_sigma_for(&scenario).with_recorder(&ts_rec);
    let mut bf = BackfillScheduler::new(PointSource::Oracle, PredictorConfig::default());
    let ts_report = run_one(&scenario, "threesigma", &mut ts, &ts_rec);
    let bf_report = run_one(&scenario, "backfill", &mut bf, &bf_rec);
    let mut out: Vec<String> = ts_report
        .violations
        .iter()
        .chain(&bf_report.violations)
        .map(|v| format!("dominance-trace invariant: {v}"))
        .collect();
    let (Some(ts_m), Some(bf_m)) = (&ts_report.metrics, &bf_report.metrics) else {
        out.push("dominance trace: a run errored".into());
        return out;
    };
    for (t, b) in ts_m.outcomes.iter().zip(&bf_m.outcomes) {
        if b.deadline_met() == Some(true) && t.deadline_met() != Some(true) {
            out.push(format!(
                "seed {seed}: 3sigma missed SLO job {:?} that backfill met (no contention, perfect estimates)",
                t.id
            ));
        }
    }
    out
}

/// Runs the full campaign for one seed (see module docs).
pub fn run_seed(seed: u64) -> SeedReport {
    run_seed_with(seed, SeedOverrides::default())
}

/// [`run_seed`] with command-line overrides applied on top of the generated
/// scenario. With default overrides this is exactly `run_seed`.
pub fn run_seed_with(seed: u64, overrides: SeedOverrides) -> SeedReport {
    let mut scenario = Scenario::generate(seed);
    if let Some(max_retries) = overrides.max_retries {
        scenario.retry.max_retries = max_retries;
    }
    if overrides.cycle_budget_ms.is_some() {
        // A wall-clock budget replaces the deterministic work-unit budget;
        // dropping it here disarms the work-unit cost bound in
        // `governor-sanity` (which would not hold under wall-clock caps).
        scenario.cycle_budget = None;
    }
    let ts_rec = Recorder::enabled();
    let prio_rec = Recorder::enabled();
    let bf_rec = Recorder::enabled();
    let mut ts = three_sigma_for_with(&scenario, &overrides).with_recorder(&ts_rec);
    let mut prio = PrioScheduler::new();
    let mut bf = BackfillScheduler::new(PointSource::Oracle, PredictorConfig::default());
    let mut ts_report = run_one(&scenario, "threesigma", &mut ts, &ts_rec);
    // Governor acceptance on budgeted profiles: the run must have tripped
    // the budget at least once (the profile is built to overload the
    // cycle), and the degradation ladder must have stepped all the way
    // back to level 0 by the time the backlog drained. Skipped under
    // command-line overrides, which change what the budget means.
    if scenario.cycle_budget.is_some() && overrides.is_default() {
        let snap = ts_rec.snapshot();
        let overruns = snap.counter("sched_budget_overruns_total").unwrap_or(0);
        let level = snap.gauge("sched_degradation_level").unwrap_or(0.0);
        if overruns == 0 {
            ts_report.violations.push(
                "[governor-sanity] budgeted profile never overran its cycle budget".to_string(),
            );
        }
        if level != 0.0 {
            ts_report.violations.push(format!(
                "[governor-sanity] governor still degraded (level {level}) after the run drained"
            ));
        }
    }
    let schedulers = vec![
        ts_report,
        run_one(&scenario, "prio", &mut prio, &prio_rec),
        run_one(&scenario, "backfill", &mut bf, &bf_rec),
    ];
    let mut differential = differential_safety(&schedulers, scenario.jobs.len());
    differential.extend(dominance_violations(seed));
    SeedReport {
        seed,
        profile: scenario.profile.name(),
        jobs: scenario.jobs.len(),
        faults: scenario.faults.len(),
        schedulers,
        differential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = run_seed(3).render();
        let b = run_seed(3).render();
        assert_eq!(a, b);
    }

    #[test]
    fn every_profile_runs_all_invariants() {
        for seed in 0..7u64 {
            let r = run_seed(seed);
            assert!(r.passed(), "seed {seed}:\n{}", r.render());
            for s in &r.schedulers {
                for (name, n) in &s.counts {
                    assert!(*n > 0, "seed {seed}: {} never checked {name}", s.scheduler);
                }
            }
        }
    }

    #[test]
    fn threesigma_counters_tick_under_the_harness() {
        let scenario = Scenario::generate(1);
        let rec = Recorder::enabled();
        let mut ts = three_sigma_for(&scenario).with_recorder(&rec);
        let report = run_one(&scenario, "threesigma", &mut ts, &rec);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.counts["counter-consistency"] > 0);
        let snap = rec.snapshot();
        assert!(snap.counter("engine_cycles_total").unwrap_or(0) > 0);
        assert!(snap.counter("sched_options_enumerated_total").unwrap_or(0) > 0);
        assert!(snap.counter("sched_cache_lookups_total").unwrap_or(0) > 0);
    }

    #[test]
    fn node_crashes_profile_kills_retries_and_censors() {
        let scenario = Scenario::generate(5);
        assert_eq!(scenario.profile.name(), "node-crashes");
        let rec = Recorder::enabled();
        let mut ts = three_sigma_for(&scenario).with_recorder(&rec);
        let report = run_one(&scenario, "threesigma", &mut ts, &rec);
        assert!(report.passed(), "{:?}", report.violations);
        let m = report.metrics.unwrap();
        assert!(m.kills > 0, "fault script never killed a running attempt");
        // No killed job is lost: every traced job still reaches a terminal
        // state once the run drains.
        assert_eq!(
            m.count(JobState::Completed) + m.count(JobState::Canceled),
            scenario.jobs.len(),
            "a job was lost under kill/retry"
        );
        // Every kill reached the predictor as a censored observation — the
        // truncated runtimes were never fed to the histograms as completions.
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter("predict_censored_observations_total"),
            Some(m.kills as u64)
        );
    }

    #[test]
    fn overload_profile_engages_the_governor_and_recovers() {
        let scenario = Scenario::generate(6);
        assert_eq!(scenario.profile.name(), "overload");
        let budget = scenario.cycle_budget.expect("overload sets a budget");
        let rec = Recorder::enabled();
        let mut ts = three_sigma_for(&scenario).with_recorder(&rec);
        let report = run_one(&scenario, "threesigma", &mut ts, &rec);
        assert!(report.passed(), "{:?}", report.violations);
        let snap = rec.snapshot();
        assert!(
            snap.counter("sched_budget_overruns_total").unwrap_or(0) >= 1,
            "overload profile never tripped the {budget}-unit budget"
        );
        assert!(snap.counter("sched_governor_step_ups_total").unwrap_or(0) >= 1);
        assert!(snap.counter("sched_governor_step_downs_total").unwrap_or(0) >= 1);
        assert_eq!(
            snap.gauge("sched_degradation_level"),
            Some(0.0),
            "governor failed to recover to full fidelity after the drain"
        );
    }

    #[test]
    fn dominance_oracle_is_clean_on_crafted_traces() {
        for seed in [1u64, 9, 23] {
            let v = dominance_violations(seed);
            assert!(v.is_empty(), "{v:?}");
        }
    }
}
