//! Zero-dependency observability primitives for the 3Sigma reproduction.
//!
//! The design goal is a recorder that is safe to leave compiled into the
//! scheduling hot path: every handle is a pre-resolved `Arc` around plain
//! atomics, updates are `Ordering::Relaxed` fetch-adds (no locks, no
//! formatting, no allocation), and a disabled [`Recorder`] hands out
//! disconnected handles whose operations are a single branch. Registration
//! takes a `Mutex`, but registration happens once at setup time — never
//! per cycle, never per option.
//!
//! Three metric kinds, mirroring the Prometheus data model:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, totals);
//! * [`Gauge`] — last-write-wins `f64` (queue depth, utilization);
//! * [`Histogram`] — fixed-bucket distribution with sum and count
//!   (latencies; see [`Recorder::timer`]).
//!
//! Determinism is a first-class concern: metrics registered through
//! [`Recorder::timer`] are marked *unstable* (wall-clock dependent) and
//! excluded from [`Snapshot::to_stable_json`], so the JSON dump of a
//! fixed-seed run is byte-identical across machines and runs while the
//! Prometheus text still carries the timing detail.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bucket upper bounds (seconds) used by [`Recorder::timer`]: 1µs to 10s,
/// decade-spaced — wide enough for a full MILP solve, fine enough for the
/// per-stage breakdown.
pub const LATENCY_BUCKETS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Metric kind, mirroring the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-write-wins scalar.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` token.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Shared storage for one histogram: bucket counts plus sum/count.
#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` slot.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS loop on update).
    sum_bits: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// One registered metric: kind, help text, stability, and storage.
#[derive(Debug, Clone)]
struct Slot {
    kind: MetricKind,
    help: &'static str,
    /// `false` for wall-clock-dependent metrics (timers); those are kept
    /// out of the byte-stable JSON dump.
    stable: bool,
    scalar: Option<Arc<AtomicU64>>,
    histogram: Option<Arc<HistogramCore>>,
}

/// A handle to a monotonically increasing count.
///
/// Cloning is cheap (an `Arc` clone); a handle from a disabled recorder
/// records nothing. `Default` yields a disconnected handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter. Lock-free; no-op when disconnected.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(a) = &self.0 {
            a.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter with an externally tracked monotonic total
    /// (mirroring a subsystem that keeps its own deterministic count).
    /// The caller is responsible for `total` being non-decreasing.
    #[inline]
    pub fn set_total(&self, total: u64) {
        if let Some(a) = &self.0 {
            a.store(total, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disconnected).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.load(Ordering::Relaxed))
    }
}

/// A handle to a last-write-wins scalar.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge. Lock-free; no-op when disconnected.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(a) = &self.0 {
            a.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disconnected).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |a| f64::from_bits(a.load(Ordering::Relaxed)))
    }
}

/// A handle to a fixed-bucket distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation. Lock-free; no-op when disconnected.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Records a wall-clock duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }
}

/// The metric registry behind an enabled [`Recorder`].
#[derive(Debug, Default)]
struct Registry {
    metrics: Mutex<BTreeMap<String, Slot>>,
}

/// The entry point: a cheaply clonable recorder that hands out metric
/// handles and produces [`Snapshot`]s.
///
/// A *disabled* recorder (the default) hands out disconnected handles, so
/// instrumented code pays one branch per update and benches stay honest.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder that collects metrics into its own registry.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A recorder whose handles record nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(
        &self,
        name: &str,
        help: &'static str,
        kind: MetricKind,
        stable: bool,
        bounds: Option<&[f64]>,
    ) -> Slot {
        let detached = Slot {
            kind,
            help,
            stable,
            scalar: None,
            histogram: None,
        };
        let Some(reg) = &self.inner else {
            return detached;
        };
        let mut metrics = reg.metrics.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = metrics.get(name) {
            // Same name, same kind: share storage (idempotent registration).
            // A kind mismatch yields a detached handle rather than a panic.
            if existing.kind == kind {
                return existing.clone();
            }
            return detached;
        }
        let slot = Slot {
            kind,
            help,
            stable,
            scalar: match kind {
                MetricKind::Histogram => None,
                _ => Some(Arc::new(AtomicU64::new(match kind {
                    MetricKind::Gauge => 0f64.to_bits(),
                    _ => 0,
                }))),
            },
            histogram: match kind {
                MetricKind::Histogram => Some(Arc::new(HistogramCore::new(
                    bounds.unwrap_or(&LATENCY_BUCKETS),
                ))),
                _ => None,
            },
        };
        metrics.insert(name.to_string(), slot.clone());
        slot
    }

    /// Registers (or re-resolves) a counter.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        Counter(
            self.register(name, help, MetricKind::Counter, true, None)
                .scalar,
        )
    }

    /// Registers (or re-resolves) a gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        Gauge(
            self.register(name, help, MetricKind::Gauge, true, None)
                .scalar,
        )
    }

    /// Registers a deterministic histogram with explicit bucket bounds.
    pub fn histogram(&self, name: &str, help: &'static str, bounds: &[f64]) -> Histogram {
        Histogram(
            self.register(name, help, MetricKind::Histogram, true, Some(bounds))
                .histogram,
        )
    }

    /// Registers a wall-clock latency histogram ([`LATENCY_BUCKETS`],
    /// seconds). Timers are excluded from the byte-stable JSON dump
    /// because their values depend on the machine, not the seed.
    pub fn timer(&self, name: &str, help: &'static str) -> Histogram {
        let slot = self.register(name, help, MetricKind::Histogram, false, None);
        Histogram(slot.histogram)
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics = Vec::new();
        if let Some(reg) = &self.inner {
            let map = reg.metrics.lock().unwrap_or_else(|e| e.into_inner());
            for (name, slot) in map.iter() {
                let value = match slot.kind {
                    MetricKind::Counter => MetricValue::Counter(
                        slot.scalar
                            .as_ref()
                            .map_or(0, |a| a.load(Ordering::Relaxed)),
                    ),
                    MetricKind::Gauge => MetricValue::Gauge(
                        slot.scalar
                            .as_ref()
                            .map_or(0.0, |a| f64::from_bits(a.load(Ordering::Relaxed))),
                    ),
                    MetricKind::Histogram => {
                        let core = slot.histogram.as_ref().expect("histogram storage");
                        MetricValue::Histogram(HistogramValue {
                            buckets: core
                                .bounds
                                .iter()
                                .zip(&core.counts)
                                .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
                                .collect(),
                            count: core.count.load(Ordering::Relaxed),
                            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                        })
                    }
                };
                metrics.push(Metric {
                    name: name.clone(),
                    help: slot.help,
                    kind: slot.kind,
                    stable: slot.stable,
                    value,
                });
            }
        }
        Snapshot { metrics }
    }
}

/// A snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramValue {
    /// `(upper_bound, count_in_bucket)` pairs; the `+Inf` bucket is the
    /// difference between `count` and the bucket sum.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A snapshot of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram value.
    Histogram(HistogramValue),
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (Prometheus conventions: `snake_case`, `_total` suffix
    /// for counters).
    pub name: String,
    /// One-line help text.
    pub help: &'static str,
    /// Metric kind.
    pub kind: MetricKind,
    /// Whether the value is deterministic for a fixed seed (wall-clock
    /// timers are not).
    pub stable: bool,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time copy of a recorder's metrics, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.value {
                MetricValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Renders the Prometheus text exposition format (all metrics,
    /// including wall-clock timers).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", m.name, fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in &h.buckets {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cumulative}",
                            m.name,
                            fmt_f64(*bound)
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count);
                    let _ = writeln!(out, "{}_sum {}", m.name, fmt_f64(h.sum));
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                }
            }
        }
        out
    }

    /// Renders a byte-stable JSON object of the *deterministic* metrics
    /// (counters, gauges, and explicit-bucket histograms; wall-clock
    /// timers are excluded). One metric per line, sorted by name — made
    /// for diffing two runs with `diff`.
    pub fn to_stable_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for m in self.metrics.iter().filter(|m| m.stable) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "  \"{}\": {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "  \"{}\": {}", m.name, fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "  \"{}\": {{\"count\": {}, \"sum\": {}",
                        m.name,
                        h.count,
                        fmt_f64(h.sum)
                    );
                    let _ = write!(out, ", \"buckets\": [");
                    for (i, (bound, count)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{}, {count}]", fmt_f64(*bound));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// FNV-1a digest over the [`Self::to_stable_json`] bytes: a compact
    /// fingerprint of the deterministic metrics, made for the serve-mode
    /// restart-equivalence check (a restarted run must reproduce the
    /// uninterrupted run's digest exactly).
    pub fn stable_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        for b in self.to_stable_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Formats an `f64` as a valid JSON / Prometheus number: shortest
/// round-trip representation, with non-finite values mapped to the
/// Prometheus spellings (`+Inf`/`-Inf`/`NaN` — quoted contexts only).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// One sample parsed from Prometheus text: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (with any `_bucket`/`_sum`/`_count` suffix kept).
    pub name: String,
    /// Raw label block without braces (empty when unlabelled).
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition format, validating that every
/// non-comment line is `name[{labels}] value` and that every sample is
/// preceded by `# HELP` and `# TYPE` lines for its family. Returns the
/// samples, or a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    let mut typed: BTreeMap<String, &str> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: unknown metric type {kind:?}", lineno + 1));
            }
            typed.insert(name.to_string(), "");
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected `name value`", lineno + 1))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {}: bad value {v:?}", lineno + 1))?,
        };
        let (name, labels) = match head.split_once('{') {
            Some((n, l)) => (
                n.to_string(),
                l.strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label block", lineno + 1))?
                    .to_string(),
            ),
            None => (head.to_string(), String::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains_key(*f))
            .unwrap_or(&name);
        if !typed.contains_key(family) {
            return Err(format!(
                "line {}: sample {name:?} has no preceding # TYPE",
                lineno + 1
            ));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Sanitizes an arbitrary string into a metric-name segment
/// (`[a-z0-9_]`); anything else becomes `_`.
pub fn sanitize(segment: &str) -> String {
    segment
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_and_snapshot() {
        let rec = Recorder::enabled();
        let c = rec.counter("jobs_total", "jobs seen");
        let g = rec.gauge("queue_depth", "pending jobs");
        c.add(3);
        c.inc();
        g.set(7.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("jobs_total"), Some(4));
        assert_eq!(snap.gauge("queue_depth"), Some(7.5));
        assert_eq!(snap.counter("queue_depth"), None);
    }

    #[test]
    fn registration_is_idempotent_and_shares_storage() {
        let rec = Recorder::enabled();
        let a = rec.counter("x_total", "x");
        let b = rec.counter("x_total", "x");
        a.add(1);
        b.add(2);
        assert_eq!(rec.snapshot().counter("x_total"), Some(3));
        // Kind mismatch: detached handle, original storage untouched.
        let g = rec.gauge("x_total", "x");
        g.set(99.0);
        assert_eq!(rec.snapshot().counter("x_total"), Some(3));
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("a_total", "a");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(rec.snapshot().metrics.is_empty());
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let rec = Recorder::enabled();
        let h = rec.histogram("sizes", "sizes", &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 0.2] {
            h.observe(v);
        }
        let snap = rec.snapshot();
        let MetricValue::Histogram(hv) = &snap.metrics[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(hv.buckets, vec![(1.0, 2), (10.0, 1)]);
        assert_eq!(hv.count, 4);
        assert!((hv.sum - 55.7).abs() < 1e-9);
    }

    #[test]
    fn stable_json_excludes_timers_and_is_reproducible() {
        let build = || {
            let rec = Recorder::enabled();
            rec.counter("b_total", "b").add(2);
            rec.gauge("a", "a").set(0.25);
            rec.timer("t_seconds", "t").observe(0.1234);
            rec.histogram("d", "d", &[1.0]).observe(0.5);
            rec.snapshot().to_stable_json()
        };
        let json = build();
        assert_eq!(json, build());
        assert!(json.contains("\"a\": 0.25"));
        assert!(json.contains("\"b_total\": 2"));
        assert!(json.contains("\"d\": {\"count\": 1"));
        assert!(!json.contains("t_seconds"));
    }

    #[test]
    fn stable_digest_tracks_deterministic_metrics_only() {
        let build = |count: u64, wall: f64| {
            let rec = Recorder::enabled();
            rec.counter("jobs_total", "jobs").add(count);
            rec.timer("t_seconds", "t").observe(wall);
            rec.snapshot()
        };
        assert_eq!(
            build(3, 0.1).stable_digest(),
            build(3, 9.9).stable_digest(),
            "same deterministic metrics, same digest (timers ignored)"
        );
        assert_ne!(
            build(3, 0.1).stable_digest(),
            build(4, 0.1).stable_digest(),
            "a counter change moves the digest"
        );
    }

    #[test]
    fn prometheus_roundtrip_parses() {
        let rec = Recorder::enabled();
        rec.counter("jobs_total", "jobs").add(5);
        rec.gauge("util", "utilization").set(0.5);
        rec.timer("solve_seconds", "solve time").observe(0.003);
        let text = rec.snapshot().to_prometheus();
        let samples = parse_prometheus(&text).expect("parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "jobs_total" && s.value == 5.0));
        assert!(samples.iter().any(|s| s.name == "util" && s.value == 0.5));
        assert!(samples
            .iter()
            .any(|s| s.name == "solve_seconds_bucket" && s.labels.starts_with("le=")));
        assert!(samples.iter().any(|s| s.name == "solve_seconds_count"));
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(parse_prometheus("no_type_line 1").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx{le=\"1\" 2").is_err());
        assert!(parse_prometheus("# TYPE x widget\nx 2").is_err());
    }

    #[test]
    fn sanitize_maps_to_metric_segments() {
        assert_eq!(sanitize("Logical Name"), "logical_name");
        assert_eq!(sanitize("user-42"), "user_42");
    }

    #[test]
    fn concurrent_counter_updates_do_not_lose_increments() {
        let rec = Recorder::enabled();
        let c = rec.counter("n_total", "n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("n_total"), Some(4000));
    }
}
